#include "opm/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "basis/bpf.hpp"
#include "la/sparse_lu.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace opmsim::opm {

namespace {

/// Incremental adaptive-OPM engine, integral formulation.
///
/// Instead of the paper's eq. (25) — a fractional power of the adaptive
/// differential matrix via eigendecomposition, which requires pairwise
/// distinct steps and is catastrophically ill-conditioned for clustered
/// ones — the engine discretizes the *integral* form
///     E z = (A Z + G) H~^alpha
/// where H~^alpha is the exact Riemann–Liouville projection of the
/// adaptive block-pulse basis:
///     (H~^alpha)_{ij} = avg over interval j of I^alpha phi_i
///                     = [ (b_j-a_i)^{a+1} - (a_j-a_i)^{a+1}
///                        -(b_j-b_i)^{a+1} + (a_j-b_i)^{a+1} ]
///                       / (h_j * Gamma(alpha+2)),          i < j,
///     (H~^alpha)_{jj} = h_j^alpha / Gamma(alpha+2).
/// This is closed-form, exact for the basis, and unconditionally stable for
/// ANY step sequence (equal steps included); for alpha = 1 it reduces to
/// the paper's eq. (17) integral matrix, making the sweep the adaptive
/// trapezoidal rule.  Columns only depend on steps 0..j, so the grid can
/// grow and roll back as the error controller probes candidate steps.
class AdaptiveEngine {
public:
    /// `t_end` / `h_floor` bound the kernel arguments the far-history sum
    /// can see (h_floor = smallest step any caller may push — the
    /// step-doubling driver probes halves down to h_min / 2); they size
    /// the soe kernel-fit interval and are unused on the dense path.
    AdaptiveEngine(const DescriptorSystem& sys,
                   const std::vector<wave::Source>& inputs,
                   const AdaptiveOptions& opt, double t_end, double h_floor)
        : sys_(sys), inputs_(inputs), opt_(opt), n_(sys.num_states()),
          inv_gamma_a2_(1.0 / std::tgamma(opt.alpha + 2.0)) {
        if (!opt_.x0.empty()) ax0_ = sys_.a.matvec(opt_.x0);
        xend_hist_.push_back(Vectord(static_cast<std::size_t>(n_), 0.0));
        if (opt_.alpha == 1.0) {
            runsum_z_.push_back(Vectord(static_cast<std::size_t>(n_), 0.0));
            runsum_g_.push_back(Vectord(static_cast<std::size_t>(n_), 0.0));
        }
        // soe fast path: only meaningful for genuinely fractional memory
        // (alpha = 1 already has the exact running-sum path; alpha > 1 is
        // outside the kernel fitter's domain — silently stay exact).
        if (opt_.history == HistoryBackend::soe && opt_.alpha > 0.0 &&
            opt_.alpha < 1.0) {
            // Round the fit interval to dyadic classes so nearby horizons
            // (and cached vs uncached runs on them) share one table.
            const double tmin = std::exp2(std::floor(std::log2(h_floor)));
            const double tmax = std::exp2(std::ceil(std::log2(t_end)));
            bool fresh = true;
            kfit_ = opt_.caches != nullptr
                        ? opt_.caches->soe_kernel(opt_.alpha, tmin, tmax,
                                                  opt_.soe_tol, &fresh)
                        : fit_soe_kernel(opt_.alpha, tmin, tmax, opt_.soe_tol);
            if (fresh) ++diag_.soe_fits;
            // A fit this bad would corrupt the waveform outright (the grid
            // is degenerate, e.g. t_end / h_floor ~ 1e15) — fall back to
            // the exact dense path rather than degrade silently.
            soe_active_ = kfit_.rel_error <= 0.1;
        }
        if (soe_active_) {
            const std::size_t kn =
                static_cast<std::size_t>(kfit_.modes()) *
                static_cast<std::size_t>(n_);
            soe_sz_.assign(kn, 0.0);
            soe_sg_.assign(kn, 0.0);
            diag_.history_backend = HistoryBackend::soe;
            diag_.soe_modes = static_cast<int>(2 * kfit_.modes());
            diag_.soe_fit_error = kfit_.rel_error;
        }
    }

    [[nodiscard]] std::size_t columns() const { return steps_.size(); }
    [[nodiscard]] const Vectord& steps() const { return steps_; }
    [[nodiscard]] const std::vector<Vectord>& solution() const { return xcols_; }
    [[nodiscard]] index_t factorizations() const { return factorizations_; }
    [[nodiscard]] const Diagnostics& diag() const { return diag_; }

    /// Current end-of-history state estimate.
    [[nodiscard]] const Vectord& x_end() const { return xend_hist_.back(); }

    /// Length of the most recently pushed step.
    [[nodiscard]] double last_step() const { return steps_.back(); }

    /// Append a column with step h starting at time t.  Returns the
    /// end-of-interval state estimate (x_end = 2 X_j - x_start).
    Vectord push_step(double t, double h) {
        steps_.push_back(h);
        edges_.push_back(edges_.empty() ? h : edges_.back() + h);
        gcols_.push_back(forcing(t, h));
        if (soe_active_) advance_soe_state();
        xcols_.push_back(solve_column());

        if (opt_.alpha == 1.0) {
            // Extend the running sums to include the new column.
            Vectord rz = runsum_z_.back();
            Vectord rg = runsum_g_.back();
            la::axpy(h, xcols_.back(), rz);
            la::axpy(h, gcols_.back(), rg);
            runsum_z_.push_back(std::move(rz));
            runsum_g_.push_back(std::move(rg));
        }

        Vectord xe(static_cast<std::size_t>(n_));
        const Vectord& xj = xcols_.back();
        const Vectord& xs = xend_hist_.back();
        for (index_t i = 0; i < n_; ++i)
            xe[static_cast<std::size_t>(i)] =
                2.0 * xj[static_cast<std::size_t>(i)] - xs[static_cast<std::size_t>(i)];
        xend_hist_.push_back(xe);
        return xe;
    }

    /// Remove the most recent column (trial rollback).
    void pop_step() {
        OPMSIM_ENSURE(!steps_.empty(), "AdaptiveEngine::pop_step on empty history");
        steps_.pop_back();
        edges_.pop_back();
        gcols_.pop_back();
        xcols_.pop_back();
        xend_hist_.pop_back();
        if (opt_.alpha == 1.0) {
            runsum_z_.pop_back();
            runsum_g_.pop_back();
        }
        if (soe_active_) {
            // Restore the mode states checkpointed by the matching push.
            OPMSIM_ENSURE(!soe_snapshots_.empty(),
                          "AdaptiveEngine::pop_step: soe checkpoint stack "
                          "underflow (pops outran the snapshot window)");
            const std::size_t kn = soe_sz_.size();
            const Vectord& snap = soe_snapshots_.back();
            std::copy(snap.begin(), snap.begin() + static_cast<std::ptrdiff_t>(kn),
                      soe_sz_.begin());
            std::copy(snap.begin() + static_cast<std::ptrdiff_t>(kn), snap.end(),
                      soe_sg_.begin());
            soe_snapshots_.pop_back();
        }
    }

private:
    /// Exact Riemann–Liouville entry (H~^alpha)_{ij} for the current grid
    /// (i <= j = last column).
    [[nodiscard]] double h_entry(index_t i, index_t j) const {
        const double hj = steps_[static_cast<std::size_t>(j)];
        if (i == j) return std::pow(hj, opt_.alpha) * inv_gamma_a2_;
        const double ai = (i == 0) ? 0.0 : edges_[static_cast<std::size_t>(i - 1)];
        const double bi = edges_[static_cast<std::size_t>(i)];
        const double aj = edges_[static_cast<std::size_t>(j - 1)];
        const double bj = edges_[static_cast<std::size_t>(j)];
        const double e = opt_.alpha + 1.0;
        const double v = std::pow(bj - ai, e) - std::pow(aj - ai, e) -
                         std::pow(bj - bi, e) + std::pow(aj - bi, e);
        return v * inv_gamma_a2_ / hj;
    }

    /// Forcing G_j = B * avg(u over the interval) + A x0 (Caputo shift).
    [[nodiscard]] Vectord forcing(double t, double h) const {
        Vectord uj(inputs_.size());
        const Vectord iv = {t, t + h};
        for (std::size_t i = 0; i < inputs_.size(); ++i)
            uj[i] = wave::project_average(inputs_[i], iv, opt_.quad_points)[0];
        Vectord g(static_cast<std::size_t>(n_), 0.0);
        sys_.b.gaxpy(1.0, uj, g);
        if (!ax0_.empty()) la::axpy(1.0, ax0_, g);
        return g;
    }

    /// Solve (E - H_jj A) Z_j = A sum_{i<j} H_ij Z_i + sum_{i<=j} H_ij G_i.
    ///
    /// alpha = 1 fast path: H_ij = h_i for every i < j, so both memory
    /// sums are running weighted sums maintained incrementally — O(n) per
    /// column instead of O(n j) (this is what makes adaptive OPM cheap for
    /// ordinary circuits; fractional orders genuinely need the O(n j)
    /// history convolution, matching the paper's complexity analysis).
    [[nodiscard]] Vectord solve_column() {
        const index_t j = static_cast<index_t>(steps_.size()) - 1;
        Vectord rhs(static_cast<std::size_t>(n_), 0.0);
        const double hjj = h_entry(j, j);
        ++diag_.kernel_evals;
        if (opt_.alpha == 1.0) {
            const Vectord& az = runsum_z_.back();  // sum h_i Z_i, i < j
            Vectord acc = runsum_g_.back();        // sum h_i G_i, i < j
            la::axpy(hjj, gcols_[static_cast<std::size_t>(j)], acc);
            rhs = std::move(acc);
            sys_.a.gaxpy(1.0, az, rhs);
        } else if (soe_active_) {
            // Exact near field: the adjacent column (kernel arguments
            // reach down to 0 there, below the fit interval) and the
            // diagonal.  Everything older flows in through the 2K mode
            // states, weighted by the closed-form average of e^{-lambda t}
            // over the new interval:
            //   H_ij ~= sum_k [w_k (1-e^{-l_k h_j}) / (l_k^2 h_j)]
            //           * e^{-l_k (a_j - b_i)} (1 - e^{-l_k h_i}),  i <= j-2,
            // and the bracket is c_k below (the i-dependent factor lives in
            // the states).
            Vectord acc_z(static_cast<std::size_t>(n_), 0.0);
            la::axpy(hjj, gcols_[static_cast<std::size_t>(j)], rhs);
            if (j >= 1) {
                const double hadj = h_entry(j - 1, j);
                ++diag_.kernel_evals;
                la::axpy(hadj, xcols_[static_cast<std::size_t>(j - 1)], acc_z);
                la::axpy(hadj, gcols_[static_cast<std::size_t>(j - 1)], rhs);
            }
            const double hj = steps_[static_cast<std::size_t>(j)];
            const index_t nk = kfit_.modes();
            for (index_t k = 0; k < nk; ++k) {
                const double lam = kfit_.lambdas[static_cast<std::size_t>(k)];
                const double ck = kfit_.weights[static_cast<std::size_t>(k)] *
                                  (-std::expm1(-lam * hj)) / (lam * lam * hj);
                const double* sz = soe_sz_.data() +
                                   static_cast<std::size_t>(k) *
                                       static_cast<std::size_t>(n_);
                const double* sg = soe_sg_.data() +
                                   static_cast<std::size_t>(k) *
                                       static_cast<std::size_t>(n_);
                for (index_t i = 0; i < n_; ++i) {
                    acc_z[static_cast<std::size_t>(i)] += ck * sz[i];
                    rhs[static_cast<std::size_t>(i)] += ck * sg[i];
                }
            }
            sys_.a.gaxpy(1.0, acc_z, rhs);
        } else {
            Vectord acc_z(static_cast<std::size_t>(n_), 0.0);
            for (index_t i = 0; i < j; ++i) {
                const double hij = h_entry(i, j);
                la::axpy(hij, xcols_[static_cast<std::size_t>(i)], acc_z);
                la::axpy(hij, gcols_[static_cast<std::size_t>(i)], rhs);
            }
            diag_.kernel_evals += j;
            la::axpy(hjj, gcols_[static_cast<std::size_t>(j)], rhs);
            sys_.a.gaxpy(1.0, acc_z, rhs);
        }
        const la::SparseLu* lu = factor(hjj);
        WallTimer solve_timer;
        lu->solve_in_place(rhs);
        diag_.solve_seconds += solve_timer.elapsed_s();
        ++diag_.rhs_solved;
        return rhs;
    }

    /// Advance the streaming mode states to the column just appended
    /// (steps_/edges_/gcols_ already include it; xcols_ does not yet) and
    /// checkpoint the previous states for rollback.  With jn the new
    /// column index, each state
    ///     S_k(jn) = sum_{i <= jn-2} e^{-l_k (a_jn - b_i)}
    ///               * (1 - e^{-l_k h_i}) V_i            (V in {Z, G})
    /// obeys the EXACT recurrence — valid for any step sequence —
    ///     S_k(jn) = e^{-l_k h_{jn-1}} (S_k(jn-1)
    ///               + (1 - e^{-l_k h_{jn-2}}) V_{jn-2}),
    /// i.e. decay across the last committed interval and absorb the
    /// column that just aged out of the exact near field.
    void advance_soe_state() {
        // Checkpoint BEFORE mutating: pop_step restores this snapshot.
        // The window is bounded — the drivers only ever roll back the few
        // most recent trial pushes, while committed steps retire their
        // snapshots from the old end.
        Vectord snap(soe_sz_.size() + soe_sg_.size());
        std::copy(soe_sz_.begin(), soe_sz_.end(), snap.begin());
        std::copy(soe_sg_.begin(), soe_sg_.end(),
                  snap.begin() + static_cast<std::ptrdiff_t>(soe_sz_.size()));
        soe_snapshots_.push_back(std::move(snap));
        if (soe_snapshots_.size() > kSoeSnapshotWindow)
            soe_snapshots_.pop_front();

        const std::size_t jn = steps_.size() - 1;
        if (jn < 2) return;  // no column older than the exact near field yet
        const double hprev = steps_[jn - 1];
        const double habs = steps_[jn - 2];
        const Vectord& z = xcols_[jn - 2];
        const Vectord& g = gcols_[jn - 2];
        const index_t nk = kfit_.modes();
        for (index_t k = 0; k < nk; ++k) {
            const double lam = kfit_.lambdas[static_cast<std::size_t>(k)];
            const double decay = std::exp(-lam * hprev);
            const double absorb = -std::expm1(-lam * habs);
            double* sz = soe_sz_.data() + static_cast<std::size_t>(k) *
                                              static_cast<std::size_t>(n_);
            double* sg = soe_sg_.data() + static_cast<std::size_t>(k) *
                                              static_cast<std::size_t>(n_);
            for (index_t i = 0; i < n_; ++i) {
                sz[i] = decay * (sz[i] + absorb * z[static_cast<std::size_t>(i)]);
                sg[i] = decay * (sg[i] + absorb * g[static_cast<std::size_t>(i)]);
            }
        }
    }

    /// Pencil cache keyed on H_jj = h^alpha / Gamma(alpha+2).  Every pencil
    /// (E - hjj A) shares the sparsity pattern, so the fill-reducing
    /// ordering and elimination-tree analysis are computed once (first
    /// factorization) and reused by every step-size change after it; with
    /// an AdaptiveOptions::caches bundle the analysis — and any numeric
    /// factor for a step size seen by an earlier run — crosses runs too.
    const la::SparseLu* factor(double hjj) {
        auto it = lu_cache_.find(hjj);
        if (it == lu_cache_.end()) {
            WallTimer t;
            const la::CscMatrix pencil = la::CscMatrix::add(1.0, sys_.e, -hjj, sys_.a);
            std::shared_ptr<const la::SparseLu> lu;
            if (symbolic_ && opt_.caches == nullptr) {
                lu = std::make_shared<const la::SparseLu>(pencil, symbolic_);
                ++diag_.factorizations;
            } else {
                lu = acquire_factor(opt_.caches, pencil, diag_);
            }
            if (!symbolic_) symbolic_ = lu->symbolic();
            ++factorizations_;
            diag_.factor_seconds += t.elapsed_s();
            it = lu_cache_.emplace(hjj, std::move(lu)).first;
        }
        return it->second.get();
    }

    const DescriptorSystem& sys_;
    const std::vector<wave::Source>& inputs_;
    const AdaptiveOptions& opt_;
    index_t n_;
    double inv_gamma_a2_;

    Vectord steps_;
    Vectord edges_;                   ///< cumulative step sums (b_i per column)
    std::vector<Vectord> gcols_;      ///< forcing per column
    std::vector<Vectord> xcols_;      ///< solution columns
    std::vector<Vectord> xend_hist_;  ///< x_end after 0..j accepted columns
    std::vector<Vectord> runsum_z_;   ///< alpha=1: sum h_i Z_i prefix stack
    std::vector<Vectord> runsum_g_;   ///< alpha=1: sum h_i G_i prefix stack
    Vectord ax0_;

    /// soe fast path: fitted kernel table and the K x n streaming mode
    /// states for the solution (Z) and forcing (G) far histories, plus
    /// the bounded rollback checkpoint window (each entry is one
    /// concatenated (Sz, Sg) snapshot).
    static constexpr std::size_t kSoeSnapshotWindow = 8;
    bool soe_active_ = false;
    SoeKernelFit kfit_;
    std::vector<double> soe_sz_;
    std::vector<double> soe_sg_;
    std::deque<Vectord> soe_snapshots_;

    std::map<double, std::shared_ptr<const la::SparseLu>> lu_cache_;
    std::shared_ptr<const la::SparseLuSymbolic> symbolic_;  ///< one per pattern
    index_t factorizations_ = 0;
    Diagnostics diag_;
};

} // namespace

AdaptiveResult simulate_opm_adaptive(const DescriptorSystem& sys,
                                     const std::vector<wave::Source>& inputs,
                                     double t_end, const AdaptiveOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(t_end > 0.0, "simulate_opm_adaptive: t_end must be positive");
    OPMSIM_REQUIRE(opt.alpha > 0.0, "simulate_opm_adaptive: alpha must be positive");
    OPMSIM_REQUIRE(opt.tol > 0.0, "simulate_opm_adaptive: tol must be positive");
    OPMSIM_REQUIRE(static_cast<index_t>(inputs.size()) == sys.num_inputs(),
                   "simulate_opm_adaptive: input count mismatch");

    const double h_init = opt.h_init > 0 ? opt.h_init : t_end / 64.0;
    const double h_min = opt.h_min > 0 ? opt.h_min : t_end * 1e-9;
    const double h_max = opt.h_max > 0 ? opt.h_max : t_end / 4.0;
    OPMSIM_REQUIRE(h_min <= h_init && h_init <= h_max,
                   "simulate_opm_adaptive: h_min <= h_init <= h_max violated");

    // The step-doubling trials probe half steps, so the smallest step the
    // engine can ever see (and the soe kernel-fit left edge) is h_min / 2.
    AdaptiveEngine eng(sys, inputs, opt, t_end, 0.5 * h_min);
    AdaptiveResult res;
    WallTimer total;

    double t = 0.0;
    double h = h_init;
    const index_t n = sys.num_states();
    index_t consecutive_rejects = 0;
    double last_diff = -1.0;  ///< diff of the previous trial (any step)

    while (t < t_end * (1.0 - 1e-12)) {
        util::check_run_control(opt.control);
        // Clamp to [h_min, h_max], then never step past the horizon — the
        // horizon cap wins even when the remainder is below h_min.
        const double remaining = t_end - t;
        h = std::clamp(h, h_min, h_max);
        if (h > remaining || remaining - h < h_min) h = remaining;
        OPMSIM_REQUIRE(res.accepted + res.rejected < opt.max_steps,
                       "simulate_opm_adaptive: step budget exhausted "
                       "(tolerance too tight for h_min?)");

        // Step doubling: one full step vs two half steps.
        const Vectord full_end = eng.push_step(t, h);
        eng.pop_step();
        eng.push_step(t, 0.5 * h);
        const Vectord half_end = eng.push_step(t + 0.5 * h, 0.5 * h);

        double diff = 0.0, scale = 0.0;
        for (index_t i = 0; i < n; ++i) {
            diff = std::max(diff, std::abs(full_end[static_cast<std::size_t>(i)] -
                                           half_end[static_cast<std::size_t>(i)]));
            scale = std::max(scale, std::abs(half_end[static_cast<std::size_t>(i)]));
        }
        eng.pop_step();
        eng.pop_step();
        if (!std::isfinite(diff) || !std::isfinite(scale))
            throw solver_error(ErrorCode::nonfinite_state,
                               "simulate_opm_adaptive: trial step at t = " +
                                   std::to_string(t) + " (h = " + std::to_string(h) +
                                   ") produced a non-finite state");
#ifdef OPMSIM_ADAPTIVE_DEBUG
        // Best-effort debug trace; a failed stderr write is not actionable
        // here (cert-err33-c).
        static_cast<void>(std::fprintf(stderr,
                                       "t=%.6g h=%.6g diff=%.3e scale=%.3e err=%.3e\n",
                                       t, h, diff, scale, diff / (scale + 1e-300)));
#endif

        const double threshold = opt.atol + opt.tol * scale;
        const bool pass = diff <= threshold;
        // Futility: the estimate is insensitive to h (for fractional
        // systems this is error inherited through the memory kernel from
        // earlier coarse intervals — no local step size can reduce it).
        // Committing and *growing* builds the geometric graded mesh the
        // fractional literature prescribes.
        const bool futile = !pass && last_diff > 0.0 &&
                            diff >= 0.9 * last_diff && diff <= 1.25 * last_diff;
        last_diff = diff;

        if (pass || futile || h <= h_min * (1.0 + 1e-12) ||
            consecutive_rejects >= opt.max_consecutive_rejects) {
            eng.push_step(t, h);  // commit the full step
            t += h;
            ++res.accepted;
            consecutive_rejects = 0;
            if (futile || diff < 0.25 * threshold) h = std::min(2.0 * h, h_max);
        } else {
            ++res.rejected;
            ++consecutive_rejects;
            h = std::max(0.5 * h, h_min);
        }
    }

    // Package the history.
    const std::size_t m = eng.columns();
    res.steps = eng.steps();
    res.edges = basis::edges_from_steps(res.steps);
    res.coeffs = la::Matrixd(n, static_cast<index_t>(m));
    for (std::size_t j = 0; j < m; ++j)
        for (index_t i = 0; i < n; ++i)
            res.coeffs(i, static_cast<index_t>(j)) = eng.solution()[j][static_cast<std::size_t>(i)];
    res.diag = eng.diag();
    res.diag.sweep_seconds =
        std::max(0.0, total.elapsed_s() - res.diag.factor_seconds);
    res.outputs = outputs_from_coeffs(sys.c, res.coeffs, res.edges, opt.x0);
    return res;
}

AdaptiveResult simulate_opm_adaptive(const DenseDescriptorSystem& sys,
                                     const std::vector<wave::Source>& inputs,
                                     double t_end, const AdaptiveOptions& opt) {
    const DescriptorSystem s = sys.to_sparse();
    return simulate_opm_adaptive(s, inputs, t_end, opt);
}

AdaptiveResult simulate_opm_nonuniform(const DescriptorSystem& sys,
                                       const std::vector<wave::Source>& inputs,
                                       const Vectord& steps,
                                       const AdaptiveOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(!steps.empty(), "simulate_opm_nonuniform: empty step list");
    OPMSIM_REQUIRE(opt.alpha > 0.0,
                   "simulate_opm_nonuniform: alpha must be positive");
    OPMSIM_REQUIRE(static_cast<index_t>(inputs.size()) == sys.num_inputs(),
                   "simulate_opm_nonuniform: input count mismatch");
    double t_end = 0.0, h_floor = steps[0];
    for (const double h : steps) {
        OPMSIM_REQUIRE(h > 0.0 && std::isfinite(h),
                       "simulate_opm_nonuniform: every step must be positive "
                       "and finite");
        t_end += h;
        h_floor = std::min(h_floor, h);
    }

    AdaptiveEngine eng(sys, inputs, opt, t_end, h_floor);
    AdaptiveResult res;
    WallTimer total;
    double t = 0.0;
    for (const double h : steps) {
        util::check_run_control(opt.control);
        eng.push_step(t, h);
        t += h;
        ++res.accepted;
    }

    const std::size_t m = eng.columns();
    const index_t n = sys.num_states();
    res.steps = eng.steps();
    res.edges = basis::edges_from_steps(res.steps);
    res.coeffs = la::Matrixd(n, static_cast<index_t>(m));
    for (std::size_t j = 0; j < m; ++j)
        for (index_t i = 0; i < n; ++i)
            res.coeffs(i, static_cast<index_t>(j)) =
                eng.solution()[j][static_cast<std::size_t>(i)];
    res.diag = eng.diag();
    res.diag.sweep_seconds =
        std::max(0.0, total.elapsed_s() - res.diag.factor_seconds);
    res.outputs = outputs_from_coeffs(sys.c, res.coeffs, res.edges, opt.x0);
    return res;
}

} // namespace opmsim::opm
