#pragma once
/// \file adaptive.hpp
/// \brief Adaptive-time-step OPM (paper §III-B and eq. 25).
///
/// The adaptive BPFs (eq. 16) give column-dependent operational matrices
/// D~ (eq. 17); the column sweep still works because D~^alpha stays upper
/// triangular, and entry (i,j) depends only on steps h_i..h_j — so columns
/// can be *grown incrementally* as the controller accepts steps.
///
/// Per-column machinery:
///  * alpha = 1: column j of D~ is closed-form ((2/h_j) diagonal,
///    alternating +-4/h_j above); repeated steps are fine.
///  * fractional alpha: column j of D~^alpha is computed with the Parlett
///    recurrence on the triangular D~, which requires pairwise-distinct
///    steps — exactly the condition the paper attaches to eq. (25).  The
///    driver nudges colliding steps apart by a relative 1e-4 (the
///    controller is free to choose steps, so this costs nothing but makes
///    the decomposition well separated).
///
/// The error controller is classic step doubling: each proposed step is
/// also taken as two half steps; the end-of-interval states (recovered from
/// BPF averages via x_end ~= 2 X_j - x_start) are compared, and the step is
/// halved/doubled to hold the relative difference near `tol`.

#include "opm/solver.hpp"

namespace opmsim::opm {

struct AdaptiveOptions {
    // NOTE: keep api/registry.cpp options_equal() in sync when adding fields
    // (it decides run_batch scenario grouping; `caches` is excluded).
    double alpha = 1.0;  ///< differential order (> 0)
    double tol = 1e-4;   ///< relative local error target
    double atol = 0.0;   ///< absolute error floor (solution units);
                         ///< accept when diff <= atol + tol * |x|
    double h_init = 0.0; ///< 0 => t_end / 64
    double h_min = 0.0;  ///< 0 => t_end * 1e-9
    double h_max = 0.0;  ///< 0 => t_end / 4
    Vectord x0;          ///< initial state (Caputo shift); empty = 0
    /// History representation for the fractional column sweep.  The dense
    /// default evaluates every exact Riemann–Liouville entry H~_ij — O(j)
    /// kernel evaluations per column, O(m^2) per run.  `soe` fits the RL
    /// kernel u^{alpha-1}/Gamma(alpha) by a sum of K exponentials once
    /// (see opm/soe.hpp) and keeps the far history as 2K streaming mode
    /// states whose recurrence is EXACT for any step sequence — O(K) per
    /// column, with only the adjacent column and the diagonal still
    /// computed exactly.  Requires alpha in (0, 1); outside that range
    /// (and for the alpha = 1 running-sum fast path) the engine silently
    /// uses the exact dense path and reports history_backend = naive.
    /// Backends other than `soe` all mean "exact dense" here.
    HistoryBackend history = HistoryBackend::automatic;
    /// Relative fit tolerance for the `soe` kernel compression.
    double soe_tol = 1e-8;
    int quad_points = 4;
    index_t max_steps = 200000;
    /// Force-accept after this many consecutive rejections.  Fractional
    /// responses start as t^alpha, so the *relative* step-doubling error at
    /// the origin is scale-invariant (~1 - 2^{-alpha}) and no step size can
    /// satisfy a pure relative tolerance there; bounding the rejection run
    /// produces the graded startup mesh fractional solvers need while the
    /// absolute error stays O(h_final^alpha) — locally tiny and, thanks to
    /// the decaying memory kernel, globally harmless.
    index_t max_consecutive_rejects = 15;
    /// Optional cross-run cache bundle (same semantics as
    /// OpmOptions::caches).  Adaptive runs benefit twice: the pencil
    /// pattern analysis is shared across every step size, and repeated
    /// runs re-encountering the same step sizes reuse whole numeric
    /// factors.
    SolveCaches* caches = nullptr;
    /// Optional cooperative deadline / cancellation token (non-owning;
    /// util/status.hpp), checked once per controller trial.  Injected by
    /// Engine::run_batch; excluded from options_equal like `caches`.
    const util::RunControl* control = nullptr;
};

struct AdaptiveResult {
    la::Matrixd coeffs;  ///< n x m, m = number of accepted steps
    Vectord steps;       ///< accepted step lengths
    Vectord edges;       ///< m+1 interval edges
    std::vector<wave::Waveform> outputs;

    /// Uniform timing / cache diagnostics (opm/diagnostics.hpp).  Unlike
    /// the legacy `factorizations` counter below, diag.factorizations
    /// counts only factors *computed* here — pencils served from
    /// AdaptiveOptions::caches do not inflate it.
    Diagnostics diag;

    index_t accepted = 0;
    index_t rejected = 0;
};

/// Simulate E d^alpha x = A x + B u on [0, t_end) with adaptive steps.
AdaptiveResult simulate_opm_adaptive(const DescriptorSystem& sys,
                                     const std::vector<wave::Source>& inputs,
                                     double t_end,
                                     const AdaptiveOptions& opt = {});

/// Dense-pencil convenience overload.
AdaptiveResult simulate_opm_adaptive(const DenseDescriptorSystem& sys,
                                     const std::vector<wave::Source>& inputs,
                                     double t_end,
                                     const AdaptiveOptions& opt = {});

/// Simulate on a PRESCRIBED nonuniform grid: one column per entry of
/// `steps` (every step > 0), no error control — the controller fields of
/// `opt` (tol, h_*, max_*) are ignored; alpha, x0, history, soe_tol,
/// quad_points, caches and control apply.  This is the integral-form
/// adaptive engine driven without trial steps, so it is the oracle
/// surface for clustered / equal / strongly graded step sequences and
/// the direct way to use the `soe` streaming history on a user grid.
AdaptiveResult simulate_opm_nonuniform(const DescriptorSystem& sys,
                                       const std::vector<wave::Source>& inputs,
                                       const Vectord& steps,
                                       const AdaptiveOptions& opt = {});

} // namespace opmsim::opm
