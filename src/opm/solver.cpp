#include "opm/solver.hpp"

#include <cmath>
#include <limits>

#include "la/dense_lu.hpp"
#include "la/kron.hpp"
#include "la/sparse_lu.hpp"
#include "opm/operational.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"
#include "util/fault_inject.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace opmsim::opm {

void DescriptorSystem::validate() const {
    const index_t n = a.rows();
    OPMSIM_REQUIRE(a.cols() == n, "DescriptorSystem: A must be square");
    OPMSIM_REQUIRE(e.rows() == n && e.cols() == n,
                   "DescriptorSystem: E must match A's shape");
    OPMSIM_REQUIRE(b.rows() == n, "DescriptorSystem: B row count must equal n");
    if (c.rows() > 0)
        OPMSIM_REQUIRE(c.cols() == n, "DescriptorSystem: C column count must equal n");
}

DescriptorSystem DenseDescriptorSystem::to_sparse() const {
    DescriptorSystem s;
    s.e = la::CscMatrix::from_dense(e);
    s.a = la::CscMatrix::from_dense(a);
    s.b = la::CscMatrix::from_dense(b);
    if (c.rows() > 0) s.c = la::CscMatrix::from_dense(c);
    return s;
}

std::vector<wave::Waveform> outputs_from_coeffs(const la::CscMatrix& c,
                                                const la::Matrixd& x,
                                                const Vectord& edges,
                                                const Vectord& x0) {
    const index_t n = x.rows();
    const index_t m = x.cols();
    const index_t q = c.rows() > 0 ? c.rows() : n;
    const Vectord mid = basis::interval_midpoints(edges);

    la::Matrixd y(q, m);
    Vectord xj(static_cast<std::size_t>(n));
    for (index_t j = 0; j < m; ++j) {
        for (index_t i = 0; i < n; ++i) {
            xj[static_cast<std::size_t>(i)] = x(i, j);
            if (!x0.empty()) xj[static_cast<std::size_t>(i)] += x0[static_cast<std::size_t>(i)];
        }
        if (c.rows() > 0) {
            const Vectord yj = c.matvec(xj);
            for (index_t i = 0; i < q; ++i) y(i, j) = yj[static_cast<std::size_t>(i)];
        } else {
            for (index_t i = 0; i < q; ++i) y(i, j) = xj[static_cast<std::size_t>(i)];
        }
    }

    std::vector<wave::Waveform> out;
    out.reserve(static_cast<std::size_t>(q));
    for (index_t i = 0; i < q; ++i) {
        Vectord v(static_cast<std::size_t>(m));
        for (index_t j = 0; j < m; ++j) v[static_cast<std::size_t>(j)] = y(i, j);
        out.emplace_back(mid, std::move(v));
    }
    return out;
}

std::vector<wave::Waveform> endpoint_outputs_from_coeffs(const la::CscMatrix& c,
                                                         const la::Matrixd& x,
                                                         const Vectord& edges,
                                                         const Vectord& x0) {
    const index_t n = x.rows();
    const index_t m = x.cols();
    const index_t q = c.rows() > 0 ? c.rows() : n;
    OPMSIM_REQUIRE(static_cast<index_t>(edges.size()) == m + 1,
                   "endpoint_outputs_from_coeffs: edge count mismatch");

    // Unwind interval averages into endpoint states.
    la::Matrixd xe(n, m + 1);
    for (index_t i = 0; i < n; ++i)
        xe(i, 0) = x0.empty() ? 0.0 : x0[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < m; ++j)
        for (index_t i = 0; i < n; ++i) {
            const double avg =
                x(i, j) + (x0.empty() ? 0.0 : x0[static_cast<std::size_t>(i)]);
            xe(i, j + 1) = 2.0 * avg - xe(i, j);
        }

    std::vector<wave::Waveform> out;
    out.reserve(static_cast<std::size_t>(q));
    Vectord col(static_cast<std::size_t>(n));
    la::Matrixd y(q, m + 1);
    for (index_t j = 0; j <= m; ++j) {
        for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = xe(i, j);
        if (c.rows() > 0) {
            const Vectord yj = c.matvec(col);
            for (index_t i = 0; i < q; ++i) y(i, j) = yj[static_cast<std::size_t>(i)];
        } else {
            for (index_t i = 0; i < q; ++i) y(i, j) = col[static_cast<std::size_t>(i)];
        }
    }
    for (index_t i = 0; i < q; ++i) {
        Vectord v(static_cast<std::size_t>(m) + 1);
        for (index_t j = 0; j <= m; ++j) v[static_cast<std::size_t>(j)] = y(i, j);
        out.emplace_back(edges, std::move(v));
    }
    return out;
}

namespace {

/// Effective per-column forcing G_j = B U_j + A x0 (the x0 term implements
/// the Caputo shift described in the header), stacked scenario-major: the
/// S scenarios' state blocks occupy rows [s*n, (s+1)*n), which makes every
/// stacked column simultaneously the contiguous n x S multi-RHS block the
/// blocked solves consume.
la::Matrixd build_forcing(const DescriptorSystem& sys,
                          const std::vector<std::vector<wave::Source>>& inputs,
                          const Vectord& edges, const OpmOptions& opt) {
    const index_t n = sys.num_states();
    const index_t p = sys.num_inputs();
    const index_t nscen = static_cast<index_t>(inputs.size());
    const index_t m = static_cast<index_t>(edges.size()) - 1;

    Vectord ax0;
    if (!opt.x0.empty()) {
        OPMSIM_REQUIRE(static_cast<index_t>(opt.x0.size()) == n,
                       "simulate_opm: x0 size must equal the state count");
        ax0 = sys.a.matvec(opt.x0);
    }

    la::Matrixd g(n * nscen, m);
    la::Matrixd u(p, m);
    Vectord uj(static_cast<std::size_t>(p));
    for (index_t s = 0; s < nscen; ++s) {
        const std::vector<wave::Source>& src = inputs[static_cast<std::size_t>(s)];
        OPMSIM_REQUIRE(static_cast<index_t>(src.size()) == p,
                       "simulate_opm: input count must match B's column count");
        for (index_t i = 0; i < p; ++i) {
            const Vectord ui = wave::project_average(src[static_cast<std::size_t>(i)],
                                                     edges, opt.quad_points,
                                                     opt.quad_panels);
            for (index_t j = 0; j < m; ++j) u(i, j) = ui[static_cast<std::size_t>(j)];
        }
        for (index_t j = 0; j < m; ++j) {
            for (index_t i = 0; i < p; ++i) uj[static_cast<std::size_t>(i)] = u(i, j);
            Vectord gj(static_cast<std::size_t>(n), 0.0);
            sys.b.gaxpy(1.0, uj, gj);
            if (!ax0.empty()) la::axpy(1.0, ax0, gj);
            for (index_t i = 0; i < n; ++i) g(s * n + i, j) = gj[static_cast<std::size_t>(i)];
        }
    }
    // Per-scenario NaN/Inf guard on the projected forcing: a poisoned
    // source fails with its scenario index, so run_batch's containment
    // can retry the siblings individually.
    for (index_t s = 0; s < nscen; ++s)
        for (index_t j = 0; j < m; ++j)
            for (index_t i = 0; i < n; ++i)
                if (!std::isfinite(g(s * n + i, j)))
                    throw solver_error(
                        ErrorCode::nonfinite_input,
                        "scenario " + std::to_string(s) +
                            ": source projection is non-finite at state " +
                            std::to_string(i) + ", interval " + std::to_string(j));
    return g;
}

/// Per-scenario stamp y += alpha * A x applied to every scenario block of
/// a stacked column (A is n x n, the column is n*S long).
void gaxpy_blocks(const la::CscMatrix& a, double alpha, const double* x,
                  double* y, index_t n, index_t nscen) {
    for (index_t s = 0; s < nscen; ++s) a.gaxpy(alpha, x + s * n, y + s * n);
}

/// O(m) path: (2/h E - A) X_j = (2/h E + A) X_{j-1} + G_j + G_{j-1}.
void sweep_recurrence(const DescriptorSystem& sys, const la::Matrixd& g,
                      index_t nscen, double h, SolveCaches* caches,
                      const util::RunControl* control, la::Matrixd& x,
                      Diagnostics& diag) {
    const index_t n = sys.num_states();
    const index_t nr = n * nscen;
    const index_t m = g.cols();
    const double s = 2.0 / h;

    WallTimer t;
    const la::CscMatrix pencil = la::CscMatrix::add(s, sys.e, -1.0, sys.a);
    PencilSolve ps(caches, pencil, diag, control);
    diag.factor_seconds = t.elapsed_s();

    t.reset();
    Vectord rhs(static_cast<std::size_t>(nr));
    Vectord prev(static_cast<std::size_t>(nr), 0.0);
    for (index_t j = 0; j < m; ++j) {
        for (index_t i = 0; i < nr; ++i) {
            rhs[static_cast<std::size_t>(i)] = g(i, j);
            if (j > 0) rhs[static_cast<std::size_t>(i)] += g(i, j - 1);
        }
        if (j > 0) {
            gaxpy_blocks(sys.e, s, prev.data(), rhs.data(), n, nscen);
            gaxpy_blocks(sys.a, 1.0, prev.data(), rhs.data(), n, nscen);
        }
        ps.solve(rhs.data(), nscen, n);
        for (index_t i = 0; i < nr; ++i) x(i, j) = rhs[static_cast<std::size_t>(i)];
        std::swap(prev, rhs);
    }
    diag.sweep_seconds = t.elapsed_s();
}

/// Differential form:
///   (d0 E - A) X_j = G_j - E sum_{i<j} d_{j-i} X_i.
/// The history sum is delegated to a DiffHistoryEngine backend: O(m^2 n)
/// for naive/blocked, O(m log^2 m n) for fft (with the cascade
/// stabilization for alpha > 1).  Batched scenarios stack as extra
/// history rows — one shared coefficient stream drives all of them.
void sweep_toeplitz_diff(const DescriptorSystem& sys, const la::Matrixd& g,
                         index_t nscen, double alpha, double h,
                         HistoryBackend backend, double soe_tol,
                         SolveCaches* caches, const util::RunControl* control,
                         la::Matrixd& x, Diagnostics& diag) {
    const index_t n = sys.num_states();
    const index_t nr = n * nscen;
    const index_t m = g.cols();
    const double d0 = std::pow(2.0 / h, alpha);
    diag.history_backend = HistoryEngine::resolve(backend, m);

    WallTimer t;
    const la::CscMatrix pencil = la::CscMatrix::add(d0, sys.e, -1.0, sys.a);
    PencilSolve ps(caches, pencil, diag, control);
    diag.factor_seconds = t.elapsed_s();

    t.reset();
    DiffHistoryEngine eng(alpha, h, nr, m, backend, caches, soe_tol);
    if (eng.backend() == HistoryBackend::soe) {
        diag.soe_modes = static_cast<int>(eng.soe_modes());
        diag.soe_fit_error = eng.soe_fit_error();
        diag.soe_fits = static_cast<int>(eng.soe_fresh_fits());
    }
    Vectord acc(static_cast<std::size_t>(nr));
    Vectord rhs(static_cast<std::size_t>(nr));
    for (index_t j = 0; j < m; ++j) {
        eng.history(j, acc);
        for (index_t i = 0; i < nr; ++i) rhs[static_cast<std::size_t>(i)] = g(i, j);
        gaxpy_blocks(sys.e, -1.0, acc.data(), rhs.data(), n, nscen);
        ps.solve(rhs.data(), nscen, n);
        for (index_t i = 0; i < nr; ++i) x(i, j) = rhs[static_cast<std::size_t>(i)];
        if (fault::enabled() && fault::fire(fault::Site::history_nan))
            rhs[0] = std::numeric_limits<double>::quiet_NaN();
        eng.push(j, rhs.data());
    }
    diag.sweep_seconds = t.elapsed_s();
}

/// Integral form:
///   (E - g0 A) X_j = A sum_{i<j} g_{j-i} X_i + (G H^alpha)_j.
/// Both the forcing precompute W = G H^alpha and the history sum go
/// through the fast-convolution machinery.
void sweep_toeplitz_int(const DescriptorSystem& sys, const la::Matrixd& g,
                        index_t nscen, const UpperToeplitz& hop,
                        HistoryBackend backend, double soe_tol,
                        SolveCaches* caches, const util::RunControl* control,
                        la::Matrixd& x, Diagnostics& diag) {
    const index_t n = sys.num_states();
    const index_t nr = n * nscen;
    const index_t m = g.cols();
    const double g0 = hop.coeffs[0];
    diag.history_backend = HistoryEngine::resolve(backend, m);

    WallTimer t;
    const la::CscMatrix pencil = la::CscMatrix::add(1.0, sys.e, -g0, sys.a);
    PencilSolve ps(caches, pencil, diag, control);
    diag.factor_seconds = t.elapsed_s();

    t.reset();
    const la::Matrixd w = toeplitz_apply(hop, g, backend, caches, soe_tol);

    HistoryEngine eng(hop.coeffs, nr, m, backend, caches, soe_tol);
    if (eng.backend() == HistoryBackend::soe) {
        diag.soe_modes = static_cast<int>(eng.soe_modes());
        diag.soe_fit_error = eng.soe_fit_error();
        diag.soe_fits = static_cast<int>(eng.soe_fresh_fits());
    }
    Vectord acc(static_cast<std::size_t>(nr));
    Vectord rhs(static_cast<std::size_t>(nr));
    for (index_t j = 0; j < m; ++j) {
        eng.history(j, acc);
        for (index_t i = 0; i < nr; ++i) rhs[static_cast<std::size_t>(i)] = w(i, j);
        gaxpy_blocks(sys.a, 1.0, acc.data(), rhs.data(), n, nscen);
        ps.solve(rhs.data(), nscen, n);
        for (index_t i = 0; i < nr; ++i) x(i, j) = rhs[static_cast<std::size_t>(i)];
        if (fault::enabled() && fault::fire(fault::Site::history_nan))
            rhs[0] = std::numeric_limits<double>::quiet_NaN();
        eng.push(j, rhs.data());
    }
    diag.sweep_seconds = t.elapsed_s();
}

} // namespace

std::vector<OpmResult> simulate_opm_batch(
    const DescriptorSystem& sys,
    const std::vector<std::vector<wave::Source>>& inputs, double t_end,
    index_t m, const OpmOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(!inputs.empty(), "simulate_opm_batch: empty scenario list");
    OPMSIM_REQUIRE(t_end > 0.0, "simulate_opm: t_end must be positive");
    OPMSIM_REQUIRE(m >= 1, "simulate_opm: m >= 1 required");
    OPMSIM_REQUIRE(opt.alpha > 0.0, "simulate_opm: alpha must be positive");

    OpmPath path = opt.path;
    const bool recurrence_ok =
        opt.alpha == 1.0 && opt.form == OpmForm::differential;
    if (path == OpmPath::automatic)
        path = recurrence_ok ? OpmPath::recurrence : OpmPath::toeplitz;
    OPMSIM_REQUIRE(path != OpmPath::recurrence || recurrence_ok,
                   "simulate_opm: recurrence path requires alpha == 1 and the "
                   "differential form");

    const index_t n = sys.num_states();
    const index_t nscen = static_cast<index_t>(inputs.size());
    const double h = t_end / static_cast<double>(m);
    const Vectord edges = wave::uniform_edges(t_end, m);

    const la::Matrixd g = build_forcing(sys, inputs, edges, opt);
    la::Matrixd x(n * nscen, m);
    Diagnostics diag;

    if (path == OpmPath::recurrence) {
        sweep_recurrence(sys, g, nscen, h, opt.caches, opt.control, x, diag);
    } else if (opt.form == OpmForm::differential) {
        sweep_toeplitz_diff(sys, g, nscen, opt.alpha, h, opt.history,
                            opt.soe_tol, opt.caches, opt.control, x, diag);
    } else {
        const UpperToeplitz hop = frac_integral_toeplitz(opt.alpha, h, m);
        sweep_toeplitz_int(sys, g, nscen, hop, opt.history, opt.soe_tol,
                           opt.caches, opt.control, x, diag);
    }

    // Per-scenario results.  The shared factor/sweep work is accounted to
    // scenario 0 (summing across results stays truthful); every scenario
    // reports its own m solved RHS columns.
    std::vector<OpmResult> out(static_cast<std::size_t>(nscen));
    for (index_t s = 0; s < nscen; ++s) {
        OpmResult& res = out[static_cast<std::size_t>(s)];
        res.edges = edges;
        if (nscen == 1) {
            res.coeffs = std::move(x);  // single scenario: no extraction copy
        } else {
            res.coeffs = la::Matrixd(n, m);
            for (index_t j = 0; j < m; ++j)
                for (index_t i = 0; i < n; ++i) res.coeffs(i, j) = x(s * n + i, j);
        }
        if (s == 0) {
            res.diag = diag;
        } else {
            res.diag.history_backend = diag.history_backend;
            res.diag.soe_modes = diag.soe_modes;
            res.diag.soe_fit_error = diag.soe_fit_error;
            res.diag.ordering = diag.ordering;
            // Report the shared batch factor as a cache hit only when a
            // cache bundle actually served it.
            if (opt.caches != nullptr) res.diag.factor_cache_hits = 1;
        }
        res.diag.rhs_solved = m;
        res.outputs = outputs_from_coeffs(sys.c, res.coeffs, res.edges, opt.x0);
    }
    return out;
}

OpmResult simulate_opm(const DescriptorSystem& sys,
                       const std::vector<wave::Source>& inputs, double t_end,
                       index_t m, const OpmOptions& opt) {
    std::vector<OpmResult> res =
        simulate_opm_batch(sys, {inputs}, t_end, m, opt);
    return std::move(res.front());
}

OpmResult simulate_opm(const DenseDescriptorSystem& sys,
                       const std::vector<wave::Source>& inputs, double t_end,
                       index_t m, const OpmOptions& opt) {
    return simulate_opm(sys.to_sparse(), inputs, t_end, m, opt);
}

OpmResult simulate_opm_windowed(const DescriptorSystem& sys,
                                const std::vector<wave::Source>& inputs,
                                double t_end, index_t m, index_t window,
                                const OpmOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(opt.alpha == 1.0,
                   "simulate_opm_windowed: fractional orders carry memory "
                   "across windows; use simulate_opm");
    OPMSIM_REQUIRE(t_end > 0.0 && m >= 1 && window >= 1,
                   "simulate_opm_windowed: bad time grid");

    const index_t n = sys.num_states();
    const double h = t_end / static_cast<double>(m);

    OpmResult res;
    res.edges = wave::uniform_edges(t_end, m);
    res.coeffs = la::Matrixd(n, m);

    Vectord x0 = opt.x0.empty() ? Vectord(static_cast<std::size_t>(n), 0.0)
                                : opt.x0;
    for (index_t start = 0; start < m; start += window) {
        const index_t cols = std::min(window, m - start);
        const double t0 = h * static_cast<double>(start);

        // Time-shift the inputs into the window's local frame.
        std::vector<wave::Source> shifted;
        shifted.reserve(inputs.size());
        for (const auto& u : inputs)
            shifted.push_back([u, t0](double t) { return u(t + t0); });

        OpmOptions wopt = opt;
        wopt.x0 = x0;
        const OpmResult w = simulate_opm(
            sys, shifted, h * static_cast<double>(cols), cols, wopt);
        res.diag.factor_seconds += w.diag.factor_seconds;
        res.diag.sweep_seconds += w.diag.sweep_seconds;
        res.diag.solve_seconds += w.diag.solve_seconds;
        res.diag.rhs_solved += w.diag.rhs_solved;
        res.diag.orderings += w.diag.orderings;
        res.diag.factorizations += w.diag.factorizations;
        res.diag.refactor_count += w.diag.refactor_count;
        res.diag.factor_cache_hits += w.diag.factor_cache_hits;
        res.diag.history_backend = w.diag.history_backend;
        res.diag.ordering = w.diag.ordering;
        res.diag.refinement_iters += w.diag.refinement_iters;
        res.diag.rcond_estimate = w.diag.rcond_estimate;
        res.diag.pivot_growth = w.diag.pivot_growth;
        res.diag.degradations.insert(res.diag.degradations.end(),
                                     w.diag.degradations.begin(),
                                     w.diag.degradations.end());

        // Copy window coefficients (absolute values: add the Caputo shift
        // back so res.coeffs matches the monolithic zero-IC convention of
        // "coefficients of x(t)" when opt.x0 is empty).
        for (index_t j = 0; j < cols; ++j)
            for (index_t i = 0; i < n; ++i)
                res.coeffs(i, start + j) =
                    w.coeffs(i, j) + x0[static_cast<std::size_t>(i)];

        // End-of-window state by unwinding the averages: x_{k+1} = 2X_k - x_k.
        Vectord xe = x0;
        for (index_t j = 0; j < cols; ++j)
            for (index_t i = 0; i < n; ++i)
                xe[static_cast<std::size_t>(i)] =
                    2.0 * (w.coeffs(i, j) + x0[static_cast<std::size_t>(i)]) -
                    xe[static_cast<std::size_t>(i)];
        x0 = std::move(xe);
    }

    // Match simulate_opm's convention: res.coeffs holds the shifted
    // variable z = x - x0 and outputs add the initial state back.
    if (!opt.x0.empty())
        for (index_t j = 0; j < m; ++j)
            for (index_t i = 0; i < n; ++i)
                res.coeffs(i, j) -= opt.x0[static_cast<std::size_t>(i)];
    res.outputs = outputs_from_coeffs(sys.c, res.coeffs, res.edges, opt.x0);
    return res;
}

OpmResult simulate_generic_basis(const DenseDescriptorSystem& sys,
                                 const std::vector<wave::Source>& inputs,
                                 const basis::Basis& bas, const Vectord& x0) {
    const index_t n = sys.num_states();
    const index_t p = sys.num_inputs();
    const index_t m = bas.size();
    OPMSIM_REQUIRE(static_cast<index_t>(inputs.size()) == p,
                   "simulate_generic_basis: input count mismatch");
    OPMSIM_REQUIRE(x0.empty() || static_cast<index_t>(x0.size()) == n,
                   "simulate_generic_basis: x0 size mismatch");

    // Project the inputs; U is p x m.
    la::Matrixd u(p, m);
    for (index_t i = 0; i < p; ++i) {
        const Vectord ci = bas.project(inputs[static_cast<std::size_t>(i)]);
        for (index_t j = 0; j < m; ++j) u(i, j) = ci[static_cast<std::size_t>(j)];
    }

    WallTimer t;
    const la::Matrixd pmat = bas.integration_matrix();
    // (I (x) E - P^T (x) A) vec(X) = vec(B U P + E x0 k1^T)
    const la::Matrixd lhs =
        la::kron(la::Matrixd::identity(m), sys.e) -
        la::kron(pmat.transposed(), sys.a);
    la::Matrixd rhs_m = sys.b * u * pmat;
    if (!x0.empty()) {
        const Vectord k1 = bas.constant_coeffs();
        const Vectord ex0 = la::matvec(sys.e, x0);
        for (index_t j = 0; j < m; ++j)
            for (index_t i = 0; i < n; ++i)
                rhs_m(i, j) += ex0[static_cast<std::size_t>(i)] * k1[static_cast<std::size_t>(j)];
    }
    const la::DenseLu<double> lu(lhs);
    const Vectord xv = lu.solve(la::vec(rhs_m));

    OpmResult res;
    res.coeffs = la::unvec(xv, n, m);
    res.diag.factor_seconds = t.elapsed_s();
    res.diag.factorizations = 1;
    res.diag.rcond_estimate = lu.rcond_estimate();
    res.diag.pivot_growth = lu.pivot_growth();
    res.edges = wave::uniform_edges(bas.t_end(), m);

    // Outputs: synthesize y = C x channel by channel on a fine grid.
    const index_t q = sys.num_outputs();
    const la::Matrixd y =
        sys.c.rows() > 0 ? sys.c * res.coeffs : res.coeffs;
    for (index_t i = 0; i < q; ++i) {
        Vectord ci(static_cast<std::size_t>(m));
        for (index_t j = 0; j < m; ++j) ci[static_cast<std::size_t>(j)] = y(i, j);
        res.outputs.push_back(bas.to_waveform(ci));
    }
    return res;
}

} // namespace opmsim::opm
