#include "opm/fractional_series.hpp"

#include <vector>

#include "util/check.hpp"

namespace opmsim::opm {

namespace {

using Vectorld = std::vector<long double>;

/// Extended-precision binomial series of (1 + s*q)^alpha.  The series
/// coefficients feed history sums that cancel by orders of magnitude (the
/// differential operator for alpha > 1 grows like d^{alpha-1}); computing
/// them in long double makes the returned rows correctly rounded, so the
/// direct row and its cascade factorization (fast_history.cpp) agree to
/// ~1 ulp instead of drifting apart at the accumulated-roundoff level.
Vectorld binomial_series_ld(double alpha, double s, index_t m) {
    Vectorld c(static_cast<std::size_t>(m));
    c[0] = 1.0L;
    // C(alpha, k) = C(alpha, k-1) * (alpha - k + 1) / k
    for (index_t k = 1; k < m; ++k)
        c[static_cast<std::size_t>(k)] =
            c[static_cast<std::size_t>(k - 1)] *
            (static_cast<long double>(alpha) - static_cast<long double>(k) + 1.0L) /
            static_cast<long double>(k);
    if (s < 0)
        for (index_t k = 1; k < m; k += 2)
            c[static_cast<std::size_t>(k)] = -c[static_cast<std::size_t>(k)];
    return c;
}

Vectorld poly_mul_trunc_ld(const Vectorld& a, const Vectorld& b, index_t m) {
    Vectorld c(static_cast<std::size_t>(m), 0.0L);
    const index_t na = static_cast<index_t>(a.size());
    const index_t nb = static_cast<index_t>(b.size());
    for (index_t i = 0; i < na && i < m; ++i) {
        const long double ai = a[static_cast<std::size_t>(i)];
        if (ai == 0.0L) continue;
        const index_t jmax = std::min(nb, m - i);
        for (index_t j = 0; j < jmax; ++j)
            c[static_cast<std::size_t>(i + j)] += ai * b[static_cast<std::size_t>(j)];
    }
    return c;
}

Vectord round_to_double(const Vectorld& c) {
    Vectord out(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) out[i] = static_cast<double>(c[i]);
    return out;
}

} // namespace

Vectord binomial_coeffs(double alpha, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "binomial_coeffs: m >= 1 required");
    return round_to_double(binomial_series_ld(alpha, +1.0, m));
}

Vectord binomial_series(double alpha, double s, index_t m) {
    OPMSIM_REQUIRE(s == 1.0 || s == -1.0, "binomial_series: s must be +-1");
    OPMSIM_REQUIRE(m >= 1, "binomial_series: m >= 1 required");
    return round_to_double(binomial_series_ld(alpha, s, m));
}

Vectord poly_mul_trunc(const Vectord& a, const Vectord& b, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "poly_mul_trunc: m >= 1 required");
    return round_to_double(poly_mul_trunc_ld(Vectorld(a.begin(), a.end()),
                                             Vectorld(b.begin(), b.end()), m));
}

namespace {

/// Coefficients of f = ((1 -+ q)/(1 +- q))^alpha via the O(m) recurrence
/// from (1 - q^2) f' = -+ 2 alpha f:
///     (k+1) c_{k+1} = (k-1) c_{k-1} -+ 2 alpha c_k,   c_0 = 1.
/// Replaces the O(m^2) truncated product of the two binomial series —
/// the series construction sits on the solver setup path for every sweep.
Vectord rho_series(double alpha, double s, index_t m) {
    Vectorld c(static_cast<std::size_t>(m));
    const long double a2 = 2.0L * static_cast<long double>(alpha) * s;
    c[0] = 1.0L;
    if (m > 1) c[1] = a2;
    for (index_t k = 1; k + 1 < m; ++k)
        c[static_cast<std::size_t>(k + 1)] =
            (static_cast<long double>(k - 1) * c[static_cast<std::size_t>(k - 1)] +
             a2 * c[static_cast<std::size_t>(k)]) /
            static_cast<long double>(k + 1);
    return round_to_double(c);
}

} // namespace

Vectord frac_diff_series(double alpha, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "frac_diff_series: m >= 1 required");
    // (1-q)^alpha * (1+q)^{-alpha}
    return rho_series(alpha, -1.0, m);
}

Vectord frac_int_series(double alpha, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "frac_int_series: m >= 1 required");
    // (1+q)^alpha * (1-q)^{-alpha}
    return rho_series(alpha, +1.0, m);
}

Vectord grunwald_weights(double alpha, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "grunwald_weights: m >= 1 required");
    return round_to_double(binomial_series_ld(alpha, -1.0, m));
}

} // namespace opmsim::opm
