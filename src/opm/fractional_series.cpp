#include "opm/fractional_series.hpp"

#include "util/check.hpp"

namespace opmsim::opm {

Vectord binomial_coeffs(double alpha, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "binomial_coeffs: m >= 1 required");
    Vectord c(static_cast<std::size_t>(m));
    c[0] = 1.0;
    // C(alpha, k) = C(alpha, k-1) * (alpha - k + 1) / k
    for (index_t k = 1; k < m; ++k)
        c[static_cast<std::size_t>(k)] =
            c[static_cast<std::size_t>(k - 1)] *
            (alpha - static_cast<double>(k) + 1.0) / static_cast<double>(k);
    return c;
}

Vectord binomial_series(double alpha, double s, index_t m) {
    OPMSIM_REQUIRE(s == 1.0 || s == -1.0, "binomial_series: s must be +-1");
    Vectord c = binomial_coeffs(alpha, m);
    if (s < 0)
        for (index_t k = 1; k < m; k += 2) c[static_cast<std::size_t>(k)] = -c[static_cast<std::size_t>(k)];
    return c;
}

Vectord poly_mul_trunc(const Vectord& a, const Vectord& b, index_t m) {
    OPMSIM_REQUIRE(m >= 1, "poly_mul_trunc: m >= 1 required");
    Vectord c(static_cast<std::size_t>(m), 0.0);
    const index_t na = static_cast<index_t>(a.size());
    const index_t nb = static_cast<index_t>(b.size());
    for (index_t i = 0; i < na && i < m; ++i) {
        const double ai = a[static_cast<std::size_t>(i)];
        if (ai == 0.0) continue;
        const index_t jmax = std::min(nb, m - i);
        for (index_t j = 0; j < jmax; ++j)
            c[static_cast<std::size_t>(i + j)] += ai * b[static_cast<std::size_t>(j)];
    }
    return c;
}

Vectord frac_diff_series(double alpha, index_t m) {
    // (1-q)^alpha * (1+q)^{-alpha}
    const Vectord num = binomial_series(alpha, -1.0, m);
    const Vectord den = binomial_series(-alpha, +1.0, m);
    return poly_mul_trunc(num, den, m);
}

Vectord frac_int_series(double alpha, index_t m) {
    // (1+q)^alpha * (1-q)^{-alpha}
    const Vectord num = binomial_series(alpha, +1.0, m);
    const Vectord den = binomial_series(-alpha, -1.0, m);
    return poly_mul_trunc(num, den, m);
}

Vectord grunwald_weights(double alpha, index_t m) {
    return binomial_series(alpha, -1.0, m);
}

} // namespace opmsim::opm
