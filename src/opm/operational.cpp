#include "opm/operational.hpp"

#include <cmath>

#include "la/triangular.hpp"
#include "opm/fractional_series.hpp"
#include "util/check.hpp"

namespace opmsim::opm {

Matrixd UpperToeplitz::to_dense() const {
    const index_t m = size();
    Matrixd d(m, m);
    for (index_t i = 0; i < m; ++i)
        for (index_t j = i; j < m; ++j) d(i, j) = coeffs[static_cast<std::size_t>(j - i)];
    return d;
}

UpperToeplitz frac_differential_toeplitz(double alpha, double h, index_t m) {
    OPMSIM_REQUIRE(alpha >= 0.0, "frac_differential_toeplitz: alpha >= 0 required");
    OPMSIM_REQUIRE(h > 0.0 && m >= 1, "frac_differential_toeplitz: need h>0, m>=1");
    UpperToeplitz t;
    t.coeffs = frac_diff_series(alpha, m);
    const double scale = std::pow(2.0 / h, alpha);
    for (auto& c : t.coeffs) c *= scale;
    return t;
}

UpperToeplitz frac_integral_toeplitz(double alpha, double h, index_t m) {
    OPMSIM_REQUIRE(alpha >= 0.0, "frac_integral_toeplitz: alpha >= 0 required");
    OPMSIM_REQUIRE(h > 0.0 && m >= 1, "frac_integral_toeplitz: need h>0, m>=1");
    UpperToeplitz t;
    t.coeffs = frac_int_series(alpha, m);
    const double scale = std::pow(h / 2.0, alpha);
    for (auto& c : t.coeffs) c *= scale;
    return t;
}

Matrixd frac_differential_matrix(double alpha, double h, index_t m) {
    return frac_differential_toeplitz(alpha, h, m).to_dense();
}

Matrixd frac_integral_matrix(double alpha, double h, index_t m) {
    return frac_integral_toeplitz(alpha, h, m).to_dense();
}

namespace {

bool is_integer(double a) { return a == std::floor(a); }

Matrixd matrix_power(const Matrixd& a, index_t p) {
    Matrixd r = Matrixd::identity(a.rows());
    Matrixd base = a;
    while (p > 0) {
        if (p & 1) r = r * base;
        base = base * base;
        p >>= 1;
    }
    return r;
}

} // namespace

Matrixd frac_differential_matrix_adaptive(double alpha, const Vectord& steps) {
    OPMSIM_REQUIRE(alpha >= 0.0, "frac_differential_matrix_adaptive: alpha >= 0");
    OPMSIM_REQUIRE(!steps.empty(), "frac_differential_matrix_adaptive: empty steps");
    const index_t m = static_cast<index_t>(steps.size());

    if (is_integer(alpha)) {
        if (alpha == 0.0) return Matrixd::identity(m);
        return matrix_power(basis::bpf_differential_matrix_adaptive(steps),
                            static_cast<index_t>(alpha));
    }

    bool all_equal = true;
    for (std::size_t i = 1; i < steps.size(); ++i)
        if (steps[i] != steps[0]) {
            all_equal = false;
            break;
        }
    if (all_equal)
        return frac_differential_matrix(alpha, steps[0], m);

    // Distinct steps: eigendecomposition path (paper eq. 25).  Throws
    // numerical_error from eig_upper_triangular on (near-)repeats.
    const Matrixd d = basis::bpf_differential_matrix_adaptive(steps);
    return la::fractional_power_upper(d, alpha);
}

} // namespace opmsim::opm
