#include "opm/soe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace opmsim::opm {

namespace {

/// Weighted least squares min ||A v - y||_2 by modified Gram–Schmidt QR in
/// long double with two re-orthogonalization passes and a drop tolerance:
/// a column that is (numerically) dependent on the kept ones is dropped —
/// its coefficient comes back 0 — which is what regularizes the nearly
/// collinear exponential dictionaries without a ridge term distorting the
/// fit.  `a` is column-major and consumed in place.
std::vector<long double> mgs_lsq(std::vector<std::vector<long double>>& a,
                                 const std::vector<long double>& y) {
    const std::size_t nc = a.size();
    std::vector<long double> coef(nc, 0.0L);
    if (nc == 0) return coef;
    const std::size_t ns = y.size();

    const auto dot = [ns](const std::vector<long double>& u,
                          const std::vector<long double>& v) {
        long double s = 0.0L;
        for (std::size_t i = 0; i < ns; ++i) s += u[i] * v[i];
        return s;
    };

    std::vector<std::size_t> kept;
    std::vector<std::vector<long double>> q;  // orthonormal kept columns
    std::vector<std::vector<long double>> r;  // r[p][t]: projection of kept
                                              // column p onto q_t (t < p)
    std::vector<long double> diag;            // r[p][p]
    for (std::size_t k = 0; k < nc; ++k) {
        std::vector<long double>& col = a[k];
        const long double n0 = std::sqrt(dot(col, col));
        std::vector<long double> rk(q.size(), 0.0L);
        for (int pass = 0; pass < 2; ++pass)
            for (std::size_t t = 0; t < q.size(); ++t) {
                const long double s = dot(q[t], col);
                rk[t] += s;
                for (std::size_t i = 0; i < ns; ++i) col[i] -= s * q[t][i];
            }
        const long double nn = std::sqrt(dot(col, col));
        if (!(n0 > 0.0L) || nn < 1e-13L * n0) continue;  // dependent: drop
        for (auto& v : col) v /= nn;
        kept.push_back(k);
        r.push_back(std::move(rk));
        diag.push_back(nn);
        q.push_back(std::move(col));
    }

    // Back-substitute R v = Q^T y over the kept columns.
    const std::size_t nk = kept.size();
    std::vector<long double> z(nk);
    for (std::size_t p = 0; p < nk; ++p) z[p] = dot(q[p], y);
    std::vector<long double> v(nk, 0.0L);
    for (std::size_t p = nk; p-- > 0;) {
        long double s = z[p];
        for (std::size_t t = p + 1; t < nk; ++t) s -= r[t][p] * v[t];
        v[p] = s / diag[p];
    }
    for (std::size_t p = 0; p < nk; ++p) coef[kept[p]] = v[p];
    return coef;
}

/// Log-spaced decay-rate grid — the quadrature nodes of the diffusive
/// representation, `per_decade` per decade of [lo, hi].
std::vector<double> log_nodes(double lo, double hi, int per_decade) {
    std::vector<double> out;
    const double dec = std::log10(hi / lo);
    const int count = std::max(2, static_cast<int>(std::ceil(dec * per_decade)) + 1);
    for (int i = 0; i < count; ++i)
        out.push_back(lo * std::pow(hi / lo,
                                    static_cast<double>(i) /
                                        static_cast<double>(count - 1)));
    return out;
}

} // namespace

SoeFit fit_soe_row(const double* c, index_t len, index_t window, double tol) {
    OPMSIM_REQUIRE(window >= 1 && tol > 0.0, "fit_soe_row: bad parameters");
    SoeFit best;
    best.window = window;
    if (len <= window) return best;
    const index_t tail = len - window;  // lags d = window + d', d' in [0, tail)

    long double l1 = 0.0L;
    for (index_t d = 0; d < tail; ++d) l1 += std::abs(c[window + d]);
    best.tail_l1 = static_cast<double>(l1);
    if (best.tail_l1 == 0.0) return best;  // zero tail: zero modes, exact

    best.fit_error = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
        // Sample lags: every lag of the dense head, then geometric.  Later
        // rounds densify both the samples and the rate dictionary.
        std::vector<index_t> samp;
        for (index_t d = 0; d < std::min<index_t>(tail, 48); ++d)
            samp.push_back(d);
        const double ratio = 1.0 + 1.0 / (8.0 * (round + 1));
        for (double d = 48.0; d < static_cast<double>(tail - 1); d *= ratio)
            samp.push_back(static_cast<index_t>(d));
        if (tail > 48) samp.push_back(tail - 1);
        samp.erase(std::unique(samp.begin(), samp.end()), samp.end());
        const std::size_t ns = samp.size();

        // sqrt(bucket width) sample weights make the LS objective the
        // trapezoid estimate of the l1-relevant squared error.
        std::vector<long double> sw(ns, 1.0L);
        for (std::size_t s = 0; s < ns; ++s) {
            const double lo = s == 0 ? static_cast<double>(samp[0])
                                     : 0.5 * static_cast<double>(samp[s - 1] + samp[s]);
            const double hi = s + 1 == ns
                                  ? static_cast<double>(samp[s])
                                  : 0.5 * static_cast<double>(samp[s] + samp[s + 1]);
            sw[s] = std::sqrt(static_cast<long double>(std::max(1.0, hi - lo)));
        }

        // Rate dictionary: r = +-1 exactly (marginal modes: the rho_1 tail
        // is exactly alternating) plus both signs of e^{-lambda} on a log
        // grid spanning "decays over the whole tail" .. "gone in a couple
        // of lags past the window".
        std::vector<double> rates;
        rates.push_back(1.0);
        rates.push_back(-1.0);
        const double lmin = 0.25 / static_cast<double>(std::max<index_t>(tail, 4));
        for (const double lam : log_nodes(lmin, 2.0, 7 + 4 * round)) {
            rates.push_back(std::exp(-lam));
            rates.push_back(-std::exp(-lam));
        }

        const auto build_cols = [&](const std::vector<double>& rs) {
            std::vector<std::vector<long double>> cols(rs.size());
            for (std::size_t k = 0; k < rs.size(); ++k) {
                cols[k].resize(ns);
                const double mag = std::abs(rs[k]);
                const bool neg = rs[k] < 0.0;
                for (std::size_t s = 0; s < ns; ++s) {
                    const double d = static_cast<double>(samp[s]);
                    double e = mag == 1.0 ? 1.0 : std::exp(d * std::log(mag));
                    if (neg && (samp[s] & 1)) e = -e;
                    cols[k][s] = static_cast<long double>(e) * sw[s];
                }
            }
            return cols;
        };
        std::vector<long double> y(ns);
        for (std::size_t s = 0; s < ns; ++s)
            y[s] = static_cast<long double>(c[window + samp[s]]) * sw[s];

        auto cols = build_cols(rates);
        std::vector<long double> v = mgs_lsq(cols, y);

        // Prune negligible modes (each mode's total l1 contribution bound)
        // and refit on the survivors — the compression step.
        std::vector<double> kept_r;
        for (std::size_t k = 0; k < rates.size(); ++k) {
            const double mag = std::abs(rates[k]);
            const double reach =
                mag == 1.0 ? static_cast<double>(tail)
                           : std::min(static_cast<double>(tail), 1.0 / (1.0 - mag));
            if (std::abs(static_cast<double>(v[k])) * reach > 0.005 * tol)
                kept_r.push_back(rates[k]);
        }
        if (kept_r.empty()) kept_r.push_back(rates[0]);
        auto kept_cols = build_cols(kept_r);
        v = mgs_lsq(kept_cols, y);

        // Exact l1 error over EVERY tail lag via the mode recurrences.
        const std::size_t nk = kept_r.size();
        std::vector<double> p(nk, 1.0), w(nk);
        for (std::size_t k = 0; k < nk; ++k) w[k] = static_cast<double>(v[k]);
        long double err = 0.0L;
        for (index_t d = 0; d < tail; ++d) {
            double approx = 0.0;
            for (std::size_t k = 0; k < nk; ++k) {
                approx += w[k] * p[k];
                p[k] *= kept_r[k];
            }
            err += std::abs(approx - c[window + d]);
        }

        if (static_cast<double>(err) < best.fit_error) {
            best.fit_error = static_cast<double>(err);
            best.rates.assign(kept_r.begin(), kept_r.end());
            best.weights = std::move(w);
        }
        if (best.fit_error <= tol) break;
    }
    return best;
}

SoeKernelFit fit_soe_kernel(double alpha, double tmin, double tmax, double tol) {
    OPMSIM_REQUIRE(alpha > 0.0 && alpha < 1.0,
                   "fit_soe_kernel: alpha must be in (0, 1)");
    OPMSIM_REQUIRE(tmin > 0.0 && tmax > tmin && tol > 0.0,
                   "fit_soe_kernel: bad fit interval / tolerance");
    SoeKernelFit best;
    best.alpha = alpha;
    best.tmin = tmin;
    best.tmax = tmax;
    best.rel_error = std::numeric_limits<double>::infinity();

    const double inv_gamma_a = 1.0 / std::tgamma(alpha);
    const auto kernel = [&](double u) {
        return std::pow(u, alpha - 1.0) * inv_gamma_a;
    };

    for (int round = 0; round < 3; ++round) {
        // Relative fit: columns e^{-lambda u}/g(u) against target 1 on a
        // log-spaced sample grid, so every magnitude decade of the kernel
        // counts equally.
        const std::vector<double> us =
            log_nodes(tmin, tmax, 16 + 8 * round);
        const std::size_t ns = us.size();
        const std::vector<double> lams =
            log_nodes(0.05 / tmax, 30.0 / tmin, 6 + 3 * round);

        const auto build_cols = [&](const std::vector<double>& ls) {
            std::vector<std::vector<long double>> cols(ls.size());
            for (std::size_t k = 0; k < ls.size(); ++k) {
                cols[k].resize(ns);
                for (std::size_t s = 0; s < ns; ++s)
                    cols[k][s] = static_cast<long double>(
                        std::exp(-ls[k] * us[s]) / kernel(us[s]));
            }
            return cols;
        };
        std::vector<long double> y(ns, 1.0L);

        auto cols = build_cols(lams);
        std::vector<long double> v = mgs_lsq(cols, y);

        // Prune modes whose best-case relative contribution is negligible
        // (largest |w e^{-lambda u}/g(u)| is at the left edge), then refit.
        std::vector<double> kept;
        for (std::size_t k = 0; k < lams.size(); ++k)
            if (std::abs(static_cast<double>(v[k])) *
                    std::exp(-lams[k] * tmin) / kernel(tmin) >
                1e-4 * tol)
                kept.push_back(lams[k]);
        if (kept.empty()) kept.push_back(lams.front());
        auto kept_cols = build_cols(kept);
        v = mgs_lsq(kept_cols, y);

        // Max relative error on a denser validation grid.
        double err = 0.0;
        for (const double u : log_nodes(tmin, tmax, 48)) {
            double s = 0.0;
            for (std::size_t k = 0; k < kept.size(); ++k)
                s += static_cast<double>(v[k]) * std::exp(-kept[k] * u);
            err = std::max(err, std::abs(s - kernel(u)) / kernel(u));
        }

        if (err < best.rel_error) {
            best.rel_error = err;
            best.lambdas.assign(kept.begin(), kept.end());
            best.weights.resize(kept.size());
            for (std::size_t k = 0; k < kept.size(); ++k)
                best.weights[k] = static_cast<double>(v[k]);
        }
        if (best.rel_error <= tol) break;
    }
    return best;
}

} // namespace opmsim::opm
