#pragma once
/// \file operational.hpp
/// \brief Fractional operational matrices D^alpha and H^alpha (paper §IV).
///
/// For uniform steps both operators are upper-triangular *Toeplitz*
/// matrices, fully described by their first row; the solvers consume that
/// row directly (struct UpperToeplitz) and never materialize the dense
/// matrix on the hot path.  For adaptive steps the operators lose the
/// Toeplitz property and are computed either by triangular
/// eigendecomposition (paper eq. 25) or, column-incrementally, by the
/// Parlett recurrence (opm/adaptive.cpp).

#include "basis/bpf.hpp"
#include "la/dense.hpp"

namespace opmsim::opm {

using la::index_t;
using la::Matrixd;
using la::Vectord;

/// Upper-triangular Toeplitz operator: entry (i,j) = coeffs[j-i] for j>=i.
struct UpperToeplitz {
    Vectord coeffs;  ///< first row; coeffs[0] is the diagonal value

    [[nodiscard]] index_t size() const { return static_cast<index_t>(coeffs.size()); }

    /// Densify (tests, generic-basis solver).
    [[nodiscard]] Matrixd to_dense() const;
};

/// D^alpha for m uniform steps of length h: (2/h)^alpha * rho_{alpha,m}(Q).
/// alpha = 1 reproduces basis::bpf_differential_matrix; alpha = 0 is I.
UpperToeplitz frac_differential_toeplitz(double alpha, double h, index_t m);

/// H^alpha (fractional integration): (h/2)^alpha * ((1+q)/(1-q))^alpha.
UpperToeplitz frac_integral_toeplitz(double alpha, double h, index_t m);

/// Dense D^alpha (convenience wrapper).
Matrixd frac_differential_matrix(double alpha, double h, index_t m);

/// Dense H^alpha (convenience wrapper).
Matrixd frac_integral_matrix(double alpha, double h, index_t m);

/// Adaptive-step D~^alpha.  Dispatch:
///  * alpha integer      -> exact matrix power of D~ (eq. 17),
///  * all steps equal    -> uniform Toeplitz densified,
///  * steps all distinct -> triangular eigendecomposition (eq. 25).
/// Throws numerical_error when a genuinely fractional power is requested
/// for a step vector with repeated (or nearly repeated) entries — callers
/// that generate steps (the adaptive driver) keep them pairwise distinct.
Matrixd frac_differential_matrix_adaptive(double alpha, const Vectord& steps);

} // namespace opmsim::opm
