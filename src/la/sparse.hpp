#pragma once
/// \file sparse.hpp
/// \brief Sparse matrices in triplet (COO) and compressed-sparse-column form.
///
/// Circuit matrices (MNA conductance/capacitance stamps, power-grid
/// Laplacians) are assembled as triplets and compressed to CSC.  CSC is the
/// storage the left-looking sparse LU (la/sparse_lu.hpp) consumes directly.

#include <cstddef>
#include <vector>

#include "la/dense.hpp"

namespace opmsim::la {

/// Coordinate-format accumulator.  Duplicate (i,j) entries are summed when
/// compressed — exactly the semantics of circuit stamping.
class Triplets {
public:
    Triplets(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
        OPMSIM_REQUIRE(rows >= 0 && cols >= 0, "Triplets: negative dimension");
    }

    /// Accumulate a(i,j) += v.  Zero-valued stamps are kept (they still
    /// contribute structure, which LU symbolic analysis may need).
    void add(index_t i, index_t j, double v) {
        OPMSIM_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                       "Triplets::add: index out of range");
        i_.push_back(i);
        j_.push_back(j);
        v_.push_back(v);
    }

    [[nodiscard]] index_t rows() const { return rows_; }
    [[nodiscard]] index_t cols() const { return cols_; }
    [[nodiscard]] std::size_t nnz() const { return v_.size(); }

    friend class CscMatrix;

private:
    index_t rows_, cols_;
    std::vector<index_t> i_, j_;
    std::vector<double> v_;
};

/// Immutable compressed-sparse-column matrix.
class CscMatrix {
public:
    CscMatrix() = default;

    /// Compress a triplet accumulator (duplicates summed, rows sorted
    /// within each column).
    explicit CscMatrix(const Triplets& t);

    /// Build from an existing dense matrix, dropping exact zeros (tests).
    static CscMatrix from_dense(const Matrixd& a, double drop_tol = 0.0);

    /// Adopt ready-made CSC arrays verbatim (the wire decoder's path: no
    /// re-compression, so the reconstructed matrix is bit-identical to the
    /// encoded one).  The arrays must satisfy the class invariants —
    /// col_ptr of size cols+1 starting at 0, nondecreasing, ending at nnz;
    /// row indices in range and strictly increasing within each column —
    /// or std::invalid_argument is thrown.  A fully empty triple (the
    /// default-constructed matrix) is accepted for any dimensions of 0.
    static CscMatrix from_parts(index_t rows, index_t cols,
                                std::vector<index_t> col_ptr,
                                std::vector<index_t> row_ind,
                                std::vector<double> values);

    /// n-by-n identity.
    static CscMatrix identity(index_t n);

    [[nodiscard]] index_t rows() const { return rows_; }
    [[nodiscard]] index_t cols() const { return cols_; }
    [[nodiscard]] index_t nnz() const { return static_cast<index_t>(val_.size()); }

    [[nodiscard]] const std::vector<index_t>& col_ptr() const { return colp_; }
    [[nodiscard]] const std::vector<index_t>& row_ind() const { return rowi_; }
    [[nodiscard]] const std::vector<double>& values() const { return val_; }

    /// y = A x.
    [[nodiscard]] Vectord matvec(const Vectord& x) const;

    /// y += alpha * A x (no allocation).
    void gaxpy(double alpha, const Vectord& x, Vectord& y) const;

    /// Raw-pointer overload (x and y are length-rows()/cols() arrays) —
    /// lets the batched multi-RHS sweeps stamp per-scenario sub-blocks of
    /// one contiguous RHS block without slicing into temporaries.
    void gaxpy(double alpha, const double* x, double* y) const;

    /// y = A^T x.
    [[nodiscard]] Vectord matvec_transposed(const Vectord& x) const;

    /// Structural + numerical transpose.
    [[nodiscard]] CscMatrix transposed() const;

    /// Scaled sum alpha*A + beta*B (shapes must match).
    static CscMatrix add(double alpha, const CscMatrix& a, double beta,
                         const CscMatrix& b);

    /// Densify (test / small-model convenience).
    [[nodiscard]] Matrixd to_dense() const;

    /// Entry lookup, O(log nnz(col)).  Missing entries read as 0.
    [[nodiscard]] double coeff(index_t i, index_t j) const;

    /// Symmetric permutation A(p,p) — used to apply fill-reducing orders.
    /// perm maps new index -> old index.
    [[nodiscard]] CscMatrix permuted(const std::vector<index_t>& perm) const;

private:
    index_t rows_ = 0, cols_ = 0;
    std::vector<index_t> colp_;  ///< size cols+1
    std::vector<index_t> rowi_;  ///< size nnz, sorted within column
    std::vector<double> val_;    ///< size nnz
};

} // namespace opmsim::la
