#include "la/kron.hpp"

namespace opmsim::la {

Matrixd kron(const Matrixd& a, const Matrixd& b) {
    Matrixd k(a.rows() * b.rows(), a.cols() * b.cols());
    for (index_t ja = 0; ja < a.cols(); ++ja)
        for (index_t ia = 0; ia < a.rows(); ++ia) {
            const double av = a(ia, ja);
            if (av == 0.0) continue;
            for (index_t jb = 0; jb < b.cols(); ++jb)
                for (index_t ib = 0; ib < b.rows(); ++ib)
                    k(ia * b.rows() + ib, ja * b.cols() + jb) = av * b(ib, jb);
        }
    return k;
}

Vectord vec(const Matrixd& x) {
    Vectord v(static_cast<std::size_t>(x.rows() * x.cols()));
    std::size_t k = 0;
    for (index_t j = 0; j < x.cols(); ++j)
        for (index_t i = 0; i < x.rows(); ++i) v[k++] = x(i, j);
    return v;
}

Matrixd unvec(const Vectord& v, index_t n, index_t m) {
    OPMSIM_REQUIRE(static_cast<index_t>(v.size()) == n * m, "unvec: size mismatch");
    Matrixd x(n, m);
    std::size_t k = 0;
    for (index_t j = 0; j < m; ++j)
        for (index_t i = 0; i < n; ++i) x(i, j) = v[k++];
    return x;
}

} // namespace opmsim::la
