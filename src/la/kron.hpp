#pragma once
/// \file kron.hpp
/// \brief Kronecker products and vec/unvec reshaping.
///
/// The paper states the OPM linear system in Kronecker form (eq. 15):
///   (D^T (x) E - I_m (x) A) vec(X) = (I_m (x) B) vec(U).
/// The production solvers never materialize this (they exploit the
/// triangular structure of D), but the Kronecker form is the ground truth
/// the tests verify against — see opm/kron_reference.hpp.

#include "la/dense.hpp"

namespace opmsim::la {

/// Dense Kronecker product A (x) B.
Matrixd kron(const Matrixd& a, const Matrixd& b);

/// Column-stacking vec(X): X (n x m) -> vector of length n*m.
Vectord vec(const Matrixd& x);

/// Inverse of vec: vector of length n*m -> n x m matrix.
Matrixd unvec(const Vectord& v, index_t n, index_t m);

} // namespace opmsim::la
