#pragma once
/// \file sparse_lu.hpp
/// \brief Left-looking (Gilbert–Peierls) sparse LU with partial pivoting.
///
/// This is the factorization engine behind every implicit time-stepping
/// scheme in opmsim: OPM's column-by-column sweep, backward Euler,
/// trapezoidal and Gear all factor one circuit-sized pencil once and then
/// perform m forward/backward solves.  The factorization uses:
///  * a fill-reducing column ordering (reverse Cuthill–McKee by default),
///  * Gilbert–Peierls symbolic DFS per column (O(flops) total),
///  * threshold partial pivoting that prefers the diagonal entry — circuit
///    pencils are close to diagonally dominant, and keeping the diagonal
///    pivot preserves the ordering's fill profile (the same choice KLU
///    makes).

#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace opmsim::la {

struct SparseLuOptions {
    enum class Ordering { natural, rcm };
    Ordering ordering = Ordering::rcm;
    /// Diagonal entry is accepted as pivot when |a_diag| >= pivot_tol * max
    /// |column|.  1.0 = strict partial pivoting, 0 = always diagonal.
    double pivot_tol = 0.1;
};

/// Factor once, solve many times:
///   SparseLu lu(a);
///   Vectord x = lu.solve(b);
class SparseLu {
public:
    explicit SparseLu(const CscMatrix& a, SparseLuOptions opt = {});

    /// Solve A x = b.
    [[nodiscard]] Vectord solve(Vectord b) const;

    /// Solve in place.  NOTE: uses an internal scratch buffer, so a single
    /// SparseLu instance must not be used from multiple threads
    /// concurrently (fine for opmsim's single-threaded solvers).
    void solve_in_place(Vectord& b) const;

    [[nodiscard]] index_t size() const { return n_; }
    [[nodiscard]] index_t nnz_l() const { return static_cast<index_t>(l_val_.size()); }
    [[nodiscard]] index_t nnz_u() const {
        return static_cast<index_t>(u_val_.size() + u_diag_.size());
    }

    /// Number of off-diagonal pivots chosen (diagnostic: 0 for diagonally
    /// dominant matrices).
    [[nodiscard]] index_t off_diagonal_pivots() const { return offdiag_pivots_; }

private:
    index_t n_ = 0;

    // L: unit lower triangular, stored by factor column with *original* row
    // indices (resolved through pinv_ during solves).
    std::vector<index_t> l_colp_, l_rowi_;
    std::vector<double> l_val_;

    // U: strictly upper part stored by column with pivot-position row
    // indices; diagonal separately.
    std::vector<index_t> u_colp_, u_rowi_;
    std::vector<double> u_val_;
    std::vector<double> u_diag_;

    std::vector<index_t> perm_cols_;  ///< column order: factor col j <- A col perm_cols_[j]
    std::vector<index_t> perm_rows_;  ///< pivot order:  factor row k <- A row perm_rows_[k]
    std::vector<index_t> pinv_;       ///< inverse of perm_rows_

    mutable Vectord work_;   ///< scratch for solves (original row space)
    index_t offdiag_pivots_ = 0;
};

} // namespace opmsim::la
