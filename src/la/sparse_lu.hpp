#pragma once
/// \file sparse_lu.hpp
/// \brief Left-looking (Gilbert–Peierls) sparse LU with partial pivoting,
///        split into a reusable symbolic analysis and a numeric factor.
///
/// This is the factorization engine behind every implicit time-stepping
/// scheme in opmsim: OPM's column-by-column sweep, backward Euler,
/// trapezoidal and Gear all factor one circuit-sized pencil once and then
/// perform m forward/backward solves.  The work is split in two layers:
///
///  * `SparseLuSymbolic` — per-*pattern* analysis: fill-reducing column
///    ordering (AMD / RCM / natural, or an `automatic` density policy) plus
///    the elimination tree and column counts of the symmetrized pattern
///    (the Cholesky fill estimate used to pre-size the factors).  Pencils
///    that share a sparsity pattern — every (aE - bA) combination of one
///    circuit, every step size of a transient scheme — share one symbolic
///    object.
///  * `SparseLu` — the numeric factorization: Gilbert–Peierls symbolic DFS
///    per column (O(flops) total) with threshold partial pivoting that
///    prefers the diagonal entry (circuit pencils are close to diagonally
///    dominant, and keeping the diagonal pivot preserves the ordering's
///    fill profile — the same choice KLU makes).  `refactor()` refreshes
///    the numeric values for a new same-pattern matrix while keeping the
///    pattern and pivot sequence frozen, skipping the DFS entirely.

#include <memory>
#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace opmsim::la {

struct SparseLuOptions {
    enum class Ordering {
        natural,   ///< identity permutation
        rcm,       ///< reverse Cuthill–McKee (bandwidth reducer)
        amd,       ///< approximate minimum degree (fill reducer)
        automatic  ///< pick AMD vs RCM from the symmetrized-pattern density
    };
    Ordering ordering = Ordering::automatic;
    /// Threshold partial pivoting: the structural diagonal entry is kept as
    /// pivot when |a_diag| >= pivot_tol * max |column|.  pivot_tol = 0
    /// accepts any nonzero diagonal; pivot_tol = 1 accepts the diagonal
    /// only when it ties the column maximum (strict partial pivoting with a
    /// diagonal tie-break).  Pinned by SparseLu.PivotTolThresholds.
    double pivot_tol = 0.1;
};

/// Pattern-level analysis, computed once and shared by every numeric
/// factorization of matrices with the same sparsity structure.
class SparseLuSymbolic {
public:
    explicit SparseLuSymbolic(const CscMatrix& a, SparseLuOptions opt = {});

    [[nodiscard]] index_t size() const { return n_; }
    [[nodiscard]] const SparseLuOptions& options() const { return opt_; }

    /// Column order actually used: factor col j <- A col perm_cols()[j].
    [[nodiscard]] const std::vector<index_t>& perm_cols() const { return perm_cols_; }

    /// The ordering the `automatic` policy resolved to (never `automatic`).
    [[nodiscard]] SparseLuOptions::Ordering chosen_ordering() const { return chosen_; }

    /// Average off-diagonal degree of the symmetrized pattern (the density
    /// measure the automatic policy consults).
    [[nodiscard]] double mean_degree() const { return mean_degree_; }

    /// Predicted nnz(L) + nnz(U) from the elimination-tree column counts
    /// of the symmetrized permuted pattern.  Exact for structurally
    /// symmetric matrices factored with diagonal pivots; an upper bound
    /// for unsymmetric patterns; no longer a bound once off-diagonal
    /// pivots occur.
    [[nodiscard]] index_t fill_estimate() const { return fill_estimate_; }

    /// The analyzed sparsity pattern (CSC column pointers / row indices).
    /// Shared by every factor of the pattern: SparseLu validates its input
    /// against this fingerprint instead of keeping per-instance copies.
    [[nodiscard]] const std::vector<index_t>& pattern_colp() const { return a_colp_; }
    [[nodiscard]] const std::vector<index_t>& pattern_rowi() const { return a_rowi_; }

private:
    index_t n_ = 0;
    SparseLuOptions opt_;
    SparseLuOptions::Ordering chosen_ = SparseLuOptions::Ordering::natural;
    std::vector<index_t> perm_cols_;
    std::vector<index_t> a_colp_, a_rowi_;
    double mean_degree_ = 0.0;
    index_t fill_estimate_ = 0;
};

/// Factor once, solve many times:
///   SparseLu lu(a);
///   Vectord x = lu.solve(b);
///
/// Same-pattern reuse:
///   SparseLu lu(a0);                       // full: symbolic + numeric
///   SparseLu lu1(a1, lu.symbolic());       // reuses ordering + analysis
///   lu.refactor(a2);                       // numeric-only, frozen pivots
class SparseLu {
public:
    explicit SparseLu(const CscMatrix& a, SparseLuOptions opt = {});

    /// Factor `a` reusing a previously computed symbolic analysis (the
    /// pattern of `a` must be the one the symbolic was built from).
    SparseLu(const CscMatrix& a, std::shared_ptr<const SparseLuSymbolic> symbolic);

    /// Numeric-only refactorization: recompute L and U values for a matrix
    /// with the *identical* sparsity pattern, keeping the column order,
    /// pivot sequence and factor patterns frozen.  Skips the per-column
    /// DFS and all allocation — the fast path when only coefficients
    /// change (new step size, new pencil shift).  Throws numerical_error
    /// if a frozen pivot becomes exactly zero; the caller should then fall
    /// back to a fresh factorization (which re-pivots).
    void refactor(const CscMatrix& a);

    /// Solve A x = b.
    [[nodiscard]] Vectord solve(Vectord b) const;

    /// Solve in place.  NOTE: uses an internal scratch buffer, so a single
    /// SparseLu instance must not be used from multiple threads
    /// concurrently (fine for opmsim's single-threaded solvers).
    void solve_in_place(Vectord& b) const;

    [[nodiscard]] index_t size() const { return n_; }
    [[nodiscard]] index_t nnz_l() const { return static_cast<index_t>(l_val_.size()); }
    [[nodiscard]] index_t nnz_u() const {
        return static_cast<index_t>(u_val_.size() + u_diag_.size());
    }
    /// Total factor fill nnz(L) + nnz(U) (the ordering-quality metric).
    [[nodiscard]] index_t nnz_lu() const { return nnz_l() + nnz_u(); }

    /// Number of off-diagonal pivots chosen (diagnostic: 0 for diagonally
    /// dominant matrices).
    [[nodiscard]] index_t off_diagonal_pivots() const { return offdiag_pivots_; }

    /// The shared pattern analysis (pass to another SparseLu to reuse it).
    [[nodiscard]] const std::shared_ptr<const SparseLuSymbolic>& symbolic() const {
        return symbolic_;
    }

private:
    void factorize(const CscMatrix& a);

    index_t n_ = 0;
    std::shared_ptr<const SparseLuSymbolic> symbolic_;

    // L: unit lower triangular, stored by factor column with *original* row
    // indices (resolved through pinv_ during solves).
    std::vector<index_t> l_colp_, l_rowi_;
    std::vector<double> l_val_;

    // U: strictly upper part stored by column with pivot-position row
    // indices; diagonal separately.  Entries within a column are kept in
    // the elimination (topological) order of the first factorization —
    // refactor() replays them in exactly that order.
    std::vector<index_t> u_colp_, u_rowi_;
    std::vector<double> u_val_;
    std::vector<double> u_diag_;

    // Column order (factor col j <- A col perm_cols()[j]) and the pattern
    // fingerprint both live in the shared symbolic_ — factors of one
    // pattern do not duplicate them.
    std::vector<index_t> perm_rows_;  ///< pivot order:  factor row k <- A row perm_rows_[k]
    std::vector<index_t> pinv_;       ///< inverse of perm_rows_

    mutable Vectord work_;   ///< scratch for solves (original row space)
    index_t offdiag_pivots_ = 0;
};

} // namespace opmsim::la
