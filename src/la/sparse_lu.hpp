#pragma once
/// \file sparse_lu.hpp
/// \brief Sparse LU with partial pivoting, split into a reusable symbolic
///        analysis and a numeric factor, with two numeric kernels: the
///        scalar left-looking (Gilbert–Peierls) reference and a supernodal
///        BLAS-3 panel kernel.
///
/// This is the factorization engine behind every implicit time-stepping
/// scheme in opmsim: OPM's column-by-column sweep, backward Euler,
/// trapezoidal and Gear all factor one circuit-sized pencil once and then
/// perform m forward/backward solves.  The work is split in two layers:
///
///  * `SparseLuSymbolic` — per-*pattern* analysis: fill-reducing column
///    ordering (AMD / RCM / natural, or an `automatic` density policy),
///    the elimination tree and column counts of the symmetrized pattern
///    (the Cholesky fill estimate used to pre-size the factors), and —
///    unless the scalar kernel is forced — the supernode partition: maximal
///    runs of consecutive factor columns with identical below-diagonal
///    structure, relax-amalgamated under a small explicit-zero budget.
///    Pencils that share a sparsity pattern — every (aE - bA) combination
///    of one circuit, every step size of a transient scheme — share one
///    symbolic object.
///  * `SparseLu` — the numeric factorization.  The scalar kernel is the
///    Gilbert–Peierls symbolic DFS per column (O(flops) total) with
///    threshold partial pivoting that prefers the diagonal entry (the same
///    choice KLU makes).  The supernodal kernel stores L and U in dense
///    column-block panels over the static symmetrized-Cholesky structure
///    and factors left-looking by supernode: panel assembly, then one
///    block product per updating descendant (fused multiply-scatter for
///    narrow panels, an untiled GEMM otherwise), then a dense panel
///    factorization.  It pivots on the diagonal only
///    (threshold-checked); when a diagonal pivot fails the check, the
///    `automatic` kernel falls back to the scalar path, so results are
///    always produced and the scalar kernel remains the reference.
///    `refactor()` refreshes the numeric values for a new same-pattern
///    matrix while keeping pattern and pivots frozen.
///
/// Solves accept any number of right-hand sides at once
/// (`solve_in_place(b, nrhs, ldb)`).  Both kernels solve through one
/// compact column-storage path in pivot space: the scalar factorization
/// fills it directly, the supernodal one exports its panels through the
/// symbolic's pattern-static schedules while each panel is cache-hot
/// (measured faster than solving from the padded panels directly).  A
/// multi-RHS call streams every factor column once with the RHS loop
/// inside it, and solving k columns at once is bit-identical to k single
/// solves.

#include <memory>
#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace opmsim::util {
class ByteWriter;
class ByteReader;
} // namespace opmsim::util

namespace opmsim::la {

struct SparseLuOptions {
    enum class Ordering {
        natural,   ///< identity permutation
        rcm,       ///< reverse Cuthill–McKee (bandwidth reducer)
        amd,       ///< approximate minimum degree (fill reducer)
        automatic  ///< pick AMD vs RCM from the symmetrized-pattern density
    };
    enum class Kernel {
        scalar,      ///< Gilbert–Peierls column-at-a-time (the reference)
        supernodal,  ///< BLAS-3 panel kernel, diagonal pivots only (throws
                     ///< numerical_error when a diagonal pivot fails the
                     ///< threshold test)
        automatic    ///< supernodal for n >= 32 with scalar fallback on
                     ///< pivot failure; scalar below (panel setup overhead
                     ///< dominates tiny factors)
    };
    Ordering ordering = Ordering::automatic;
    Kernel kernel = Kernel::automatic;
    /// Threshold partial pivoting: the structural diagonal entry is kept as
    /// pivot when |a_diag| >= pivot_tol * max |column|.  pivot_tol = 0
    /// accepts any nonzero diagonal; pivot_tol = 1 accepts the diagonal
    /// only when it ties the column maximum (strict partial pivoting with a
    /// diagonal tie-break).  Pinned by SparseLu.PivotTolThresholds.
    double pivot_tol = 0.1;
};

/// Pattern-level analysis, computed once and shared by every numeric
/// factorization of matrices with the same sparsity structure.
class SparseLuSymbolic {
public:
    explicit SparseLuSymbolic(const CscMatrix& a, SparseLuOptions opt = {});

    [[nodiscard]] index_t size() const { return n_; }
    [[nodiscard]] const SparseLuOptions& options() const { return opt_; }

    /// Column order actually used: factor col j <- A col perm_cols()[j].
    [[nodiscard]] const std::vector<index_t>& perm_cols() const { return perm_cols_; }

    /// The ordering the `automatic` policy resolved to (never `automatic`).
    [[nodiscard]] SparseLuOptions::Ordering chosen_ordering() const { return chosen_; }

    /// Average off-diagonal degree of the symmetrized pattern (the density
    /// measure the automatic policy consults).
    [[nodiscard]] double mean_degree() const { return mean_degree_; }

    /// Predicted nnz(L) + nnz(U) from the elimination-tree column counts
    /// of the symmetrized permuted pattern.  Exact for structurally
    /// symmetric matrices factored with diagonal pivots; an upper bound
    /// for unsymmetric patterns; no longer a bound once off-diagonal
    /// pivots occur.
    [[nodiscard]] index_t fill_estimate() const { return fill_estimate_; }

    /// The analyzed sparsity pattern (CSC column pointers / row indices).
    /// Shared by every factor of the pattern: SparseLu validates its input
    /// against this fingerprint instead of keeping per-instance copies.
    [[nodiscard]] const std::vector<index_t>& pattern_colp() const { return a_colp_; }
    [[nodiscard]] const std::vector<index_t>& pattern_rowi() const { return a_rowi_; }

    // ---- supernode partition (empty when options().kernel == scalar) ----

    /// True when the supernode analysis was computed (any kernel except a
    /// forced scalar one).
    [[nodiscard]] bool has_supernodes() const { return snode_ptr_.size() > 1; }

    /// Number of supernodes; supernode s covers the contiguous factor
    /// columns [snode_ptr()[s], snode_ptr()[s+1]).
    [[nodiscard]] index_t num_supernodes() const {
        return snode_ptr_.empty() ? 0 : static_cast<index_t>(snode_ptr_.size()) - 1;
    }
    [[nodiscard]] const std::vector<index_t>& snode_ptr() const { return snode_ptr_; }

    /// Below-panel row structure of supernode s (permuted indices, strictly
    /// ascending, all >= snode_ptr()[s+1]): srow()[srow_ptr()[s]
    /// .. srow_ptr()[s+1]).  After amalgamation every column of the
    /// supernode shares this row set (plus the in-panel rows).
    [[nodiscard]] const std::vector<index_t>& srow_ptr() const { return srow_ptr_; }
    [[nodiscard]] const std::vector<index_t>& srow() const { return srow_; }

    /// Supernode owning factor column k.
    [[nodiscard]] const std::vector<index_t>& col_to_snode() const { return col_to_snode_; }

    /// Elimination tree (parent per factor column, -1 at roots) and
    /// per-column Cholesky counts of the permuted symmetrized pattern.
    [[nodiscard]] const std::vector<index_t>& etree_parent() const { return etree_.parent; }
    [[nodiscard]] const std::vector<index_t>& col_counts() const { return etree_.col_count; }

    /// Explicit zeros admitted by the relaxed amalgamation (diagnostic:
    /// padding entries stored and computed but structurally zero).
    [[nodiscard]] index_t amalgamation_padding() const { return padding_; }

    /// Panel storage offsets: supernode s's L/diag panel occupies
    /// [lpan_off()[s], lpan_off()[s+1]) doubles, its U row block the
    /// corresponding upan_off() range.
    [[nodiscard]] const std::vector<index_t>& lpan_off() const { return lpan_off_; }
    [[nodiscard]] const std::vector<index_t>& upan_off() const { return upan_off_; }

    /// A-entry assembly schedule, grouped by destination supernode
    /// (asm_ptr()[t] .. asm_ptr()[t+1]): scatter A value asm_src()[k]
    /// (an index into the matrix's value array) to panel slot
    /// asm_dst()[k] (>= 0 addresses lpan_, ~dst addresses upan_).
    /// Grouping by target lets the numeric kernel zero, assemble, update,
    /// factor and export one supernode while its panel is cache-hot.
    [[nodiscard]] const std::vector<index_t>& asm_ptr() const { return asm_ptr_; }
    [[nodiscard]] const std::vector<index_t>& asm_src() const { return asm_src_; }
    [[nodiscard]] const std::vector<index_t>& asm_dst() const { return asm_dst_; }

    /// Exact-structure CSC export of the factor pattern (pivot space,
    /// padding excluded): after a supernodal factorization the panel
    /// values are scattered through the panel-slot destination maps below
    /// into the same compact column storage the scalar kernel produces,
    /// which the streaming triangular solves consume.  Pattern data only
    /// — shared (not copied) by every factor of the pattern.
    [[nodiscard]] const std::vector<index_t>& export_l_colp() const { return xl_colp_; }
    [[nodiscard]] const std::vector<index_t>& export_l_rowi() const { return xl_rowi_; }
    [[nodiscard]] const std::vector<index_t>& export_u_colp() const { return xu_colp_; }
    [[nodiscard]] const std::vector<index_t>& export_u_rowi() const { return xu_rowi_; }

    /// Value-export schedules, consumed right after each supernode's
    /// elimination step while its panel is cache-hot: the L entries in
    /// CSC order (panel-coherent; sources strictly ascend, so a moving
    /// cursor with src < lpan_off()[t+1] delimits supernode t), the U
    /// entries as (source, destination-in-u_val_) pairs grouped by source
    /// supernode via export_u_ptr(), and per-column diagonal sources.
    /// Sources >= 0 address lpan_, ~src addresses upan_.
    [[nodiscard]] const std::vector<index_t>& export_l_src() const { return xl_src_; }
    [[nodiscard]] const std::vector<index_t>& export_u_ptr() const { return xu_ptr_; }
    [[nodiscard]] const std::vector<index_t>& export_u_srcs() const { return xu_srcs_; }
    [[nodiscard]] const std::vector<index_t>& export_u_dsts() const { return xu_dsts_; }
    [[nodiscard]] const std::vector<index_t>& export_diag_src() const { return xdiag_src_; }

    /// Serialize the complete analysis (every field, as a length-prefixed
    /// block) — the SolveCaches snapshot format.  A loaded analysis is
    /// field-identical to the saved one, so factors built on it are
    /// bit-identical to factors built on the original.
    void save(util::ByteWriter& w) const;

    /// Reconstruct a saved analysis.  Runs basic structural sanity checks
    /// and throws solver_error(ErrorCode::invalid_scenario) on malformed
    /// input; deep integrity is the snapshot file's checksum's job.
    static std::shared_ptr<const SparseLuSymbolic> load(util::ByteReader& r);

private:
    SparseLuSymbolic() = default;  ///< load() only

    index_t n_ = 0;
    SparseLuOptions opt_;
    SparseLuOptions::Ordering chosen_ = SparseLuOptions::Ordering::natural;
    std::vector<index_t> perm_cols_;
    std::vector<index_t> a_colp_, a_rowi_;
    double mean_degree_ = 0.0;
    index_t fill_estimate_ = 0;

    EliminationTree etree_;
    std::vector<index_t> snode_ptr_, srow_ptr_, srow_, col_to_snode_;
    std::vector<index_t> lpan_off_, upan_off_;
    std::vector<index_t> asm_ptr_, asm_src_, asm_dst_;
    std::vector<index_t> xl_colp_, xl_rowi_, xu_colp_, xu_rowi_;
    std::vector<index_t> xl_src_, xu_ptr_, xu_srcs_, xu_dsts_, xdiag_src_;
    index_t padding_ = 0;
};

/// Factor once, solve many times:
///   SparseLu lu(a);
///   Vectord x = lu.solve(b);
///
/// Same-pattern reuse:
///   SparseLu lu(a0);                       // full: symbolic + numeric
///   SparseLu lu1(a1, lu.symbolic());       // reuses ordering + analysis
///   lu.refactor(a2);                       // numeric-only, frozen pivots
class SparseLu {
public:
    explicit SparseLu(const CscMatrix& a, SparseLuOptions opt = {});

    /// Factor `a` reusing a previously computed symbolic analysis (the
    /// pattern of `a` must be the one the symbolic was built from).
    SparseLu(const CscMatrix& a, std::shared_ptr<const SparseLuSymbolic> symbolic);

    /// Numeric-only refactorization: recompute L and U values for a matrix
    /// with the *identical* sparsity pattern, keeping the column order,
    /// pivot sequence and factor patterns frozen.  Skips the per-column
    /// DFS and all allocation — the fast path when only coefficients
    /// change (new step size, new pencil shift).  Throws numerical_error
    /// if a frozen pivot becomes exactly zero (scalar kernel) or a
    /// diagonal pivot fails the threshold test (supernodal kernel); the
    /// caller should then fall back to a fresh factorization.
    void refactor(const CscMatrix& a);

    /// Solve A x = b.
    [[nodiscard]] Vectord solve(Vectord b) const;

    /// Solve in place, one right-hand side.
    void solve_in_place(Vectord& b) const;

    /// Blocked multi-RHS solve: B is n x nrhs column-major with leading
    /// dimension ldb (>= n), overwritten with the solutions.  Per RHS
    /// column the result is bit-identical to a single-RHS solve; each
    /// factor column is streamed once per call with the RHS loop inside
    /// it, so the factor's memory traffic is amortized across all
    /// columns.  Both kernels solve through the same compact column
    /// storage (the supernodal factorization exports its panels through
    /// the symbolic's pattern-static gather maps).
    void solve_in_place(double* b, index_t nrhs, index_t ldb) const;

    /// Multi-RHS convenience wrapper (columns of b are the RHS vectors).
    /// Named distinctly so brace-initialized single-RHS calls keep
    /// resolving to solve(Vectord).
    [[nodiscard]] Matrixd solve_multi(Matrixd b) const;

    /// In-place transpose solve A^T x = b (consumed by the Hager
    /// condition estimator; also the adjoint-sweep building block).
    /// Bit-identical across kernels like the forward solve.
    void solve_transpose_in_place(Vectord& b) const;

    /// Hager/Higham 1-norm reciprocal-condition estimate
    /// ~ 1 / (||A||_1 ||A^-1||_1), computed from a handful of forward and
    /// transpose solves through the existing factor — no refactorization.
    /// Returns 0 when the estimate underflows (numerically singular).
    [[nodiscard]] double rcond_estimate() const;

    /// Pivot-growth factor max|U| / max|A|: large values flag an unstable
    /// elimination even when every pivot passed the threshold test.
    [[nodiscard]] double pivot_growth() const;

    /// 1-norm of the factored input (max column abs sum).
    [[nodiscard]] double anorm1() const { return anorm1_; }

    [[nodiscard]] index_t size() const { return n_; }
    /// Factor fill counters.  Scalar kernel: exact stored entries.
    /// Supernodal kernel: the structural (unpadded) counts from the
    /// elimination-tree column counts — the ordering-quality metric stays
    /// comparable across kernels; panel padding is reported separately by
    /// the symbolic analysis.
    [[nodiscard]] index_t nnz_l() const { return nnz_l_; }
    [[nodiscard]] index_t nnz_u() const { return nnz_u_; }
    /// Total factor fill nnz(L) + nnz(U) (the ordering-quality metric).
    [[nodiscard]] index_t nnz_lu() const { return nnz_l() + nnz_u(); }

    /// Number of off-diagonal pivots chosen (diagnostic: 0 for diagonally
    /// dominant matrices; always 0 for the supernodal kernel, which falls
    /// back rather than pivot off the diagonal).
    [[nodiscard]] index_t off_diagonal_pivots() const { return offdiag_pivots_; }

    /// The numeric kernel that actually produced this factor (`automatic`
    /// resolved; reports `scalar` after a supernodal pivot fallback).
    [[nodiscard]] SparseLuOptions::Kernel kernel_used() const { return kernel_; }

    /// The shared pattern analysis (pass to another SparseLu to reuse it).
    [[nodiscard]] const std::shared_ptr<const SparseLuSymbolic>& symbolic() const {
        return symbolic_;
    }

private:
    void factorize(const CscMatrix& a);
    void factorize_scalar(const CscMatrix& a);
    void refactor_scalar(const CscMatrix& a);
    void assemble_and_factor_supernodal(const CscMatrix& a);
    void factorize_supernodal(const CscMatrix& a);

    index_t n_ = 0;
    std::shared_ptr<const SparseLuSymbolic> symbolic_;
    SparseLuOptions::Kernel kernel_ = SparseLuOptions::Kernel::scalar;

    // ---- compact column storage (both kernels' solves) ----
    // Filled directly by the scalar factorization; the supernodal kernel
    // gathers its panels into the same layout through the symbolic's
    // export maps (pattern shared, values owned), so one streaming solve
    // implementation serves both.
    // L: unit lower triangular, stored by factor column with PIVOT-SPACE
    // row indices (the scalar factorization emits original rows during
    // its DFS and remaps them once pivoting completes; solves and
    // refactor run entirely in pivot space).
    std::vector<index_t> l_colp_, l_rowi_;
    std::vector<double> l_val_;

    // U: strictly upper part stored by column with pivot-position row
    // indices; diagonal separately.  Entries within a column are kept in
    // the elimination (topological) order of the first factorization —
    // refactor() replays them in exactly that order.
    std::vector<index_t> u_colp_, u_rowi_;
    std::vector<double> u_val_;
    std::vector<double> u_diag_;

    // ---- supernodal kernel storage ----
    // Per supernode s with columns J = [c0, c1), width w and nb below-panel
    // rows (symbolic srow list): lpan_ holds the (w + nb) x w column-major
    // panel at lpan_off_[s] — rows 0..w-1 are the diagonal block (upper
    // triangle + diagonal = U, strictly lower = unit-L), rows w.. are the
    // below-diagonal L block, already divided by the pivots; upan_ holds
    // the w x nb column-major block U(J, srow(s)) at upan_off_[s].
    std::vector<double> lpan_, upan_;

    // Column order (factor col j <- A col perm_cols()[j]) and the pattern
    // fingerprint both live in the shared symbolic_ — factors of one
    // pattern do not duplicate them.
    std::vector<index_t> perm_rows_;  ///< pivot order:  factor row k <- A row perm_rows_[k]
    std::vector<index_t> pinv_;       ///< inverse of perm_rows_

    index_t nnz_l_ = 0, nnz_u_ = 0;
    index_t offdiag_pivots_ = 0;

    // Input norms captured at factorize()/refactor() time for the health
    // monitors (rcond_estimate, pivot_growth).
    double anorm1_ = 0.0;
    double maxabs_a_ = 0.0;
};

} // namespace opmsim::la
