#pragma once
/// \file eig.hpp
/// \brief Dense real eigenvalue computation (Hessenberg + Francis QR).
///
/// opmsim uses eigenvalues for two purposes:
///  * verifying that generated circuit models are stable — for a fractional
///    system E d^a x/dt^a = A x the pencil eigenvalues must satisfy
///    |arg(lambda)| > a*pi/2 (Matignon's condition);
///  * cross-checking the fractional operational-matrix powers.
/// Eigenvalues only (no Schur vectors); adequate for model sizes <= ~2000.

#include <vector>

#include "la/dense.hpp"

namespace opmsim::la {

/// Eigenvalues of a general real square matrix via Householder Hessenberg
/// reduction followed by the implicit Francis double-shift QR iteration.
/// Throws numerical_error if the iteration fails to converge.
std::vector<cplx> eig_values(Matrixd a, int max_sweeps_per_eig = 60);

/// Eigenvalues of the pencil (E, A), i.e. the lambda with det(lambda E - A)
/// = 0, computed as eig(E^{-1} A).  Requires invertible E (finite
/// eigenvalues only); throws numerical_error otherwise.
std::vector<cplx> generalized_eig_values(const Matrixd& e, const Matrixd& a);

/// Matignon stability test for fractional systems: all finite eigenvalues
/// satisfy |arg(lambda)| > alpha*pi/2 (+ margin).  Returns true if stable.
bool fractional_stable(const std::vector<cplx>& eigs, double alpha,
                       double margin_rad = 0.0);

} // namespace opmsim::la
