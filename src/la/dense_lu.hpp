#pragma once
/// \file dense_lu.hpp
/// \brief Dense LU factorization with partial pivoting.
///
/// Used for the small dense pencils in opmsim (fractional transmission-line
/// models, the FFT frequency-domain baseline's complex solves, and the
/// full-Kronecker reference solver).  Large circuit matrices go through
/// la::SparseLu instead.

#include <vector>

#include "la/dense.hpp"

namespace opmsim::la {

/// PA = LU factorization with partial (row) pivoting.
///
/// T is double or std::complex<double>.  Factor once, solve many times:
///   DenseLu<double> lu(A);
///   auto x = lu.solve(b);
template <class T>
class DenseLu {
public:
    /// Factor a square matrix.  Throws numerical_error on an exactly zero
    /// pivot column (structurally singular matrix).
    explicit DenseLu(Matrix<T> a);

    /// Solve A x = b.
    [[nodiscard]] std::vector<T> solve(std::vector<T> b) const;

    /// Solve A X = B column-by-column.
    [[nodiscard]] Matrix<T> solve(const Matrix<T>& b) const;

    /// In-place solve (b is overwritten with x); avoids allocation in the
    /// inner loops of the OPM column sweep.
    void solve_in_place(std::vector<T>& b) const;

    /// In-place transpose solve A^T x = b (needed by the Hager condition
    /// estimator; also useful for adjoint sweeps).
    void solve_transpose_in_place(std::vector<T>& b) const;

    /// Hager/Higham 1-norm reciprocal-condition estimate
    /// ~ 1 / (||A||_1 ||A^-1||_1); a handful of triangular solves, no
    /// refactorization.  Returns 0 when the estimate underflows.
    [[nodiscard]] double rcond_estimate() const;

    /// Pivot growth max|U| / max|A| — elimination-stability monitor.
    [[nodiscard]] double pivot_growth() const;

    /// 1-norm of the original matrix (max column abs sum).
    [[nodiscard]] double anorm1() const { return anorm1_; }

    /// Determinant (product of pivots with permutation sign).
    [[nodiscard]] T det() const;

    /// Inverse (for tests / operational-matrix identities; O(n^3)).
    [[nodiscard]] Matrix<T> inverse() const;

    [[nodiscard]] index_t size() const { return lu_.rows(); }

private:
    Matrix<T> lu_;              ///< packed L (unit lower) and U
    std::vector<index_t> piv_;  ///< piv_[k] = row swapped into position k
    int sign_ = 1;              ///< permutation parity
    double anorm1_ = 0.0;       ///< ||A||_1 of the input, for rcond
    double maxabs_a_ = 0.0;     ///< max|A| of the input, for pivot growth
};

extern template class DenseLu<double>;
extern template class DenseLu<cplx>;

/// Convenience one-shot solve of A x = b.
template <class T>
std::vector<T> solve_dense(const Matrix<T>& a, const std::vector<T>& b) {
    return DenseLu<T>(a).solve(b);
}

/// Convenience inverse.
template <class T>
Matrix<T> inverse(const Matrix<T>& a) {
    return DenseLu<T>(a).inverse();
}

} // namespace opmsim::la
