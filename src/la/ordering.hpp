#pragma once
/// \file ordering.hpp
/// \brief Fill-reducing orderings for sparse LU.
///
/// Two families are provided, both operating on the symmetrized pattern of
/// A + A^T (the permutation is applied symmetrically before factorization):
///
///  * Reverse Cuthill–McKee: a small-bandwidth permutation — a good fill
///    reducer for path/ladder-like matrices (RC lines, chains) where the
///    profile is what matters.
///  * Approximate minimum degree (AMD): the quotient-graph minimum-degree
///    algorithm of Amestoy, Davis & Duff with aggressive element
///    absorption and supervariable (mass) elimination.  On mesh-like
///    circuit matrices (power grids, 2-D/3-D Laplacians) it produces
///    substantially less fill than RCM.

#include <vector>

#include "la/sparse.hpp"

namespace opmsim::la {

/// Symmetrized adjacency structure: the pattern of A + A^T without the
/// diagonal, in CSR-like form.  Shared substrate of the orderings and of
/// SparseLuSymbolic's elimination-tree analysis.
struct SymmetricPattern {
    std::vector<index_t> ptr;  ///< size n+1
    std::vector<index_t> adj;  ///< neighbor lists, sorted within a vertex

    [[nodiscard]] index_t size() const { return static_cast<index_t>(ptr.size()) - 1; }
    [[nodiscard]] index_t degree(index_t v) const {
        return ptr[static_cast<std::size_t>(v) + 1] - ptr[static_cast<std::size_t>(v)];
    }
    /// Average off-diagonal degree — the density measure the `automatic`
    /// ordering policy consults.
    [[nodiscard]] double mean_degree() const {
        const index_t n = size();
        return n > 0 ? static_cast<double>(adj.size()) / static_cast<double>(n) : 0.0;
    }
};

/// Build the symmetrized pattern of a square sparse matrix.
SymmetricPattern symmetrized_pattern(const CscMatrix& a);

/// Elimination tree and per-column factor counts of the permuted
/// symmetrized pattern — the Cholesky structure analysis shared by the
/// fill estimate and the supernode detection (Liu's algorithm: path
/// compression for the tree, row-subtree traversal for the counts;
/// O(nnz(L)) time, O(n) memory, no factor storage).  Indices are in the
/// *permuted* space: parent[k] is the parent column of factor column k
/// (-1 at a root), col_count[k] = nnz(L_chol(:,k)) including the diagonal.
struct EliminationTree {
    std::vector<index_t> parent;
    std::vector<index_t> col_count;

    /// nnz(L) of the Cholesky factor (sum of the column counts).
    [[nodiscard]] index_t factor_nnz() const {
        index_t s = 0;
        for (const index_t c : col_count) s += c;
        return s;
    }
};

/// Compute the elimination tree of g permuted by `perm` (new -> old).
EliminationTree elimination_tree(const SymmetricPattern& g,
                                 const std::vector<index_t>& perm);

/// Reverse Cuthill–McKee ordering of a square sparse matrix's symmetrized
/// pattern.  Returns perm with perm[new_index] = old_index.  Handles
/// disconnected graphs (each component is ordered from a pseudo-peripheral
/// vertex).
std::vector<index_t> rcm_ordering(const CscMatrix& a);
std::vector<index_t> rcm_ordering(const SymmetricPattern& g);

/// Approximate minimum degree ordering of the symmetrized pattern.
/// Returns perm with perm[new_index] = old_index.
///
/// Implementation notes (following Amestoy–Davis–Duff):
///  * quotient-graph elimination: each pivot becomes an element whose
///    variable list replaces the cliques it covers, so memory stays O(nnz);
///  * approximate external degrees via the |Le \ Lp| one-pass trick;
///  * aggressive absorption: elements whose variable list is covered by
///    the new element are deleted immediately;
///  * mass elimination: variables with identical quotient-graph adjacency
///    (detected by hashing the pivot's reach) are merged into
///    supervariables and eliminated together;
///  * dense rows (degree >= max(16, 10 sqrt(n))) are deferred and ordered
///    last — they would otherwise pollute every degree update.
std::vector<index_t> amd_ordering(const CscMatrix& a);
std::vector<index_t> amd_ordering(const SymmetricPattern& g);

/// Bandwidth of A under a given ordering (test/diagnostic helper):
/// max |new(i) - new(j)| over nonzeros (i,j).
index_t bandwidth(const CscMatrix& a, const std::vector<index_t>& perm);

/// Identity permutation of length n.
std::vector<index_t> natural_ordering(index_t n);

} // namespace opmsim::la
