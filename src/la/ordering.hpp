#pragma once
/// \file ordering.hpp
/// \brief Fill-reducing orderings for sparse LU.
///
/// Reverse Cuthill–McKee produces a small-bandwidth permutation, which is a
/// good fill reducer for the mesh-like matrices circuit simulation produces
/// (power grids, RC ladders).  The permutation is applied symmetrically to
/// the pattern of A + A^T before factorization.

#include <vector>

#include "la/sparse.hpp"

namespace opmsim::la {

/// Reverse Cuthill–McKee ordering of a square sparse matrix's symmetrized
/// pattern.  Returns perm with perm[new_index] = old_index.  Handles
/// disconnected graphs (each component is ordered from a pseudo-peripheral
/// vertex).
std::vector<index_t> rcm_ordering(const CscMatrix& a);

/// Bandwidth of A under a given ordering (test/diagnostic helper):
/// max |new(i) - new(j)| over nonzeros (i,j).
index_t bandwidth(const CscMatrix& a, const std::vector<index_t>& perm);

/// Identity permutation of length n.
std::vector<index_t> natural_ordering(index_t n);

} // namespace opmsim::la
