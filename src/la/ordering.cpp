#include "la/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace opmsim::la {

namespace {

/// Symmetrized adjacency (pattern of A + A^T, no self loops), CSR-like.
struct Graph {
    std::vector<index_t> ptr;
    std::vector<index_t> adj;
    [[nodiscard]] index_t degree(index_t v) const {
        return ptr[static_cast<std::size_t>(v) + 1] - ptr[static_cast<std::size_t>(v)];
    }
};

Graph build_graph(const CscMatrix& a) {
    const index_t n = a.rows();
    std::vector<std::vector<index_t>> nbr(static_cast<std::size_t>(n));
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_ind();
    for (index_t j = 0; j < n; ++j)
        for (index_t p = cp[static_cast<std::size_t>(j)]; p < cp[static_cast<std::size_t>(j) + 1];
             ++p) {
            const index_t i = ri[static_cast<std::size_t>(p)];
            if (i == j) continue;
            nbr[static_cast<std::size_t>(i)].push_back(j);
            nbr[static_cast<std::size_t>(j)].push_back(i);
        }
    Graph g;
    g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
    for (index_t v = 0; v < n; ++v) {
        auto& list = nbr[static_cast<std::size_t>(v)];
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
        g.ptr[static_cast<std::size_t>(v) + 1] =
            g.ptr[static_cast<std::size_t>(v)] + static_cast<index_t>(list.size());
    }
    g.adj.reserve(static_cast<std::size_t>(g.ptr.back()));
    for (auto& list : nbr) g.adj.insert(g.adj.end(), list.begin(), list.end());
    return g;
}

/// BFS recording levels; returns the last-visited vertex (an eccentric one).
index_t bfs_far_vertex(const Graph& g, index_t start, std::vector<int>& seen, int stamp) {
    std::queue<index_t> q;
    q.push(start);
    seen[static_cast<std::size_t>(start)] = stamp;
    index_t last = start;
    while (!q.empty()) {
        const index_t v = q.front();
        q.pop();
        last = v;
        for (index_t p = g.ptr[static_cast<std::size_t>(v)];
             p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
            const index_t w = g.adj[static_cast<std::size_t>(p)];
            if (seen[static_cast<std::size_t>(w)] != stamp) {
                seen[static_cast<std::size_t>(w)] = stamp;
                q.push(w);
            }
        }
    }
    return last;
}

} // namespace

std::vector<index_t> rcm_ordering(const CscMatrix& a) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "rcm_ordering: square matrix required");
    const index_t n = a.rows();
    const Graph g = build_graph(a);

    std::vector<index_t> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<bool> placed(static_cast<std::size_t>(n), false);
    std::vector<int> seen(static_cast<std::size_t>(n), -1);
    int stamp = 0;

    for (index_t root = 0; root < n; ++root) {
        if (placed[static_cast<std::size_t>(root)]) continue;
        // Pseudo-peripheral start: two BFS passes from the component's
        // min-degree unplaced vertex.
        index_t start = root;
        for (index_t v = root; v < n; ++v)
            if (!placed[static_cast<std::size_t>(v)] && g.degree(v) < g.degree(start) &&
                seen[static_cast<std::size_t>(v)] != stamp)
                ;  // degree scan limited to this component below
        start = bfs_far_vertex(g, root, seen, stamp++);
        start = bfs_far_vertex(g, start, seen, stamp++);

        // Cuthill–McKee BFS from `start`, neighbors in increasing degree.
        std::queue<index_t> q;
        q.push(start);
        placed[static_cast<std::size_t>(start)] = true;
        std::vector<index_t> nbrs;
        while (!q.empty()) {
            const index_t v = q.front();
            q.pop();
            order.push_back(v);
            nbrs.clear();
            for (index_t p = g.ptr[static_cast<std::size_t>(v)];
                 p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
                const index_t w = g.adj[static_cast<std::size_t>(p)];
                if (!placed[static_cast<std::size_t>(w)]) {
                    placed[static_cast<std::size_t>(w)] = true;
                    nbrs.push_back(w);
                }
            }
            std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
                return g.degree(x) < g.degree(y);
            });
            for (index_t w : nbrs) q.push(w);
        }
    }

    std::reverse(order.begin(), order.end());
    return order;
}

index_t bandwidth(const CscMatrix& a, const std::vector<index_t>& perm) {
    OPMSIM_REQUIRE(static_cast<index_t>(perm.size()) == a.rows(),
                   "bandwidth: permutation size mismatch");
    std::vector<index_t> inv(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
        inv[static_cast<std::size_t>(perm[k])] = static_cast<index_t>(k);
    index_t bw = 0;
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_ind();
    for (index_t j = 0; j < a.cols(); ++j)
        for (index_t p = cp[static_cast<std::size_t>(j)]; p < cp[static_cast<std::size_t>(j) + 1];
             ++p) {
            const index_t i = ri[static_cast<std::size_t>(p)];
            bw = std::max(bw, std::abs(inv[static_cast<std::size_t>(i)] -
                                       inv[static_cast<std::size_t>(j)]));
        }
    return bw;
}

std::vector<index_t> natural_ordering(index_t n) {
    std::vector<index_t> p(static_cast<std::size_t>(n));
    std::iota(p.begin(), p.end(), index_t{0});
    return p;
}

} // namespace opmsim::la
