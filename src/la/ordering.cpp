#include "la/ordering.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace opmsim::la {

namespace {

inline std::size_t usz(index_t v) { return static_cast<std::size_t>(v); }

/// BFS recording levels; returns the last-visited vertex (an eccentric one).
index_t bfs_far_vertex(const SymmetricPattern& g, index_t start, std::vector<int>& seen,
                       int stamp) {
    std::queue<index_t> q;
    q.push(start);
    seen[usz(start)] = stamp;
    index_t last = start;
    while (!q.empty()) {
        const index_t v = q.front();
        q.pop();
        last = v;
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            const index_t w = g.adj[usz(p)];
            if (seen[usz(w)] != stamp) {
                seen[usz(w)] = stamp;
                q.push(w);
            }
        }
    }
    return last;
}

} // namespace

SymmetricPattern symmetrized_pattern(const CscMatrix& a) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "symmetrized_pattern: square matrix required");
    const index_t n = a.rows();
    std::vector<std::vector<index_t>> nbr(usz(n));
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_ind();
    for (index_t j = 0; j < n; ++j)
        for (index_t p = cp[usz(j)]; p < cp[usz(j) + 1]; ++p) {
            const index_t i = ri[usz(p)];
            if (i == j) continue;
            nbr[usz(i)].push_back(j);
            nbr[usz(j)].push_back(i);
        }
    SymmetricPattern g;
    g.ptr.assign(usz(n) + 1, 0);
    for (index_t v = 0; v < n; ++v) {
        auto& list = nbr[usz(v)];
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
        g.ptr[usz(v) + 1] = g.ptr[usz(v)] + static_cast<index_t>(list.size());
    }
    g.adj.reserve(usz(g.ptr.back()));
    for (auto& list : nbr) g.adj.insert(g.adj.end(), list.begin(), list.end());
    return g;
}

EliminationTree elimination_tree(const SymmetricPattern& g,
                                 const std::vector<index_t>& perm) {
    const index_t n = g.size();
    OPMSIM_REQUIRE(static_cast<index_t>(perm.size()) == n,
                   "elimination_tree: permutation size mismatch");
    std::vector<index_t> inv(usz(n));
    for (index_t k = 0; k < n; ++k) inv[usz(perm[usz(k)])] = k;

    EliminationTree t;
    t.parent.assign(usz(n), -1);
    std::vector<index_t> ancestor(usz(n), -1);
    for (index_t i = 0; i < n; ++i) {
        const index_t v = perm[usz(i)];
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            index_t r = inv[usz(g.adj[usz(p)])];
            if (r >= i) continue;
            // Walk to the root, path-compressing onto i.
            while (ancestor[usz(r)] >= 0 && ancestor[usz(r)] != i) {
                const index_t next = ancestor[usz(r)];
                ancestor[usz(r)] = i;
                r = next;
            }
            if (ancestor[usz(r)] < 0) {
                ancestor[usz(r)] = i;
                t.parent[usz(r)] = i;
            }
        }
    }

    t.col_count.assign(usz(n), 1);  // diagonal
    std::vector<index_t> seen(usz(n), -1);
    for (index_t i = 0; i < n; ++i) {
        seen[usz(i)] = i;
        const index_t v = perm[usz(i)];
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            index_t r = inv[usz(g.adj[usz(p)])];
            if (r >= i) continue;
            // Row subtree of i: every column on the path gains entry (i, .).
            while (seen[usz(r)] != i) {
                seen[usz(r)] = i;
                ++t.col_count[usz(r)];
                r = t.parent[usz(r)];
            }
        }
    }
    return t;
}

std::vector<index_t> rcm_ordering(const CscMatrix& a) {
    return rcm_ordering(symmetrized_pattern(a));
}

std::vector<index_t> rcm_ordering(const SymmetricPattern& g) {
    const index_t n = g.size();

    std::vector<index_t> order;
    order.reserve(usz(n));
    std::vector<bool> placed(usz(n), false);
    std::vector<int> seen(usz(n), -1);
    int stamp = 0;

    for (index_t root = 0; root < n; ++root) {
        if (placed[usz(root)]) continue;
        // Pseudo-peripheral start: two BFS passes from the component root.
        index_t start = bfs_far_vertex(g, root, seen, stamp++);
        start = bfs_far_vertex(g, start, seen, stamp++);

        // Cuthill–McKee BFS from `start`, neighbors in increasing degree.
        std::queue<index_t> q;
        q.push(start);
        placed[usz(start)] = true;
        std::vector<index_t> nbrs;
        while (!q.empty()) {
            const index_t v = q.front();
            q.pop();
            order.push_back(v);
            nbrs.clear();
            for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
                const index_t w = g.adj[usz(p)];
                if (!placed[usz(w)]) {
                    placed[usz(w)] = true;
                    nbrs.push_back(w);
                }
            }
            std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
                return g.degree(x) < g.degree(y);
            });
            for (index_t w : nbrs) q.push(w);
        }
    }

    std::reverse(order.begin(), order.end());
    return order;
}

std::vector<index_t> amd_ordering(const CscMatrix& a) {
    return amd_ordering(symmetrized_pattern(a));
}

/// Approximate minimum degree on the quotient graph.
///
/// Node roles evolve during elimination: a *variable* is an uneliminated
/// (super)variable, an *element* is an eliminated pivot standing for the
/// clique of its remaining variables, and *absorbed* nodes have been merged
/// into a supervariable or covered by a newer element.  For a variable v,
/// vadj[v] holds variable neighbors and eadj[v] the elements v belongs to;
/// for an element e, vadj[e] holds its variable list Le.  Lists are pruned
/// lazily, so stale (absorbed / zero-weight) entries are skipped on scan.
std::vector<index_t> amd_ordering(const SymmetricPattern& g) {
    const index_t n = g.size();
    std::vector<index_t> order;
    order.reserve(usz(n));
    if (n == 0) return order;

    enum : char { kVar = 0, kElement = 1, kAbsorbed = 2, kDense = 3 };
    std::vector<char> state(usz(n), kVar);
    std::vector<index_t> nv(usz(n), 1);  ///< supervariable weight (0 = gone)
    std::vector<index_t> degree(usz(n), 0);
    std::vector<std::vector<index_t>> vadj(usz(n));
    std::vector<std::vector<index_t>> eadj(usz(n));

    // Member chains so a supervariable expands to consecutive output slots.
    std::vector<index_t> mem_head(usz(n)), mem_tail(usz(n)), mem_next(usz(n), -1);
    for (index_t v = 0; v < n; ++v) mem_head[usz(v)] = mem_tail[usz(v)] = v;

    // Dense rows are deferred: they would join (and so re-update) nearly
    // every pivot's reach without ever being good pivots themselves.
    const index_t dense_cut = std::max<index_t>(
        16, static_cast<index_t>(10.0 * std::sqrt(static_cast<double>(n))));
    index_t nlive = 0;
    for (index_t v = 0; v < n; ++v) {
        if (g.degree(v) >= dense_cut) state[usz(v)] = kDense;
    }
    for (index_t v = 0; v < n; ++v) {
        if (state[usz(v)] == kDense) continue;
        ++nlive;
        auto& list = vadj[usz(v)];
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            const index_t w = g.adj[usz(p)];
            if (state[usz(w)] != kDense) list.push_back(w);
        }
        degree[usz(v)] = static_cast<index_t>(list.size());
    }

    // Degree buckets (doubly linked lists indexed by approximate degree).
    std::vector<index_t> head(usz(n), -1), dnext(usz(n), -1), dprev(usz(n), -1);
    auto bucket_insert = [&](index_t v, index_t d) {
        dnext[usz(v)] = head[usz(d)];
        dprev[usz(v)] = -1;
        if (head[usz(d)] >= 0) dprev[usz(head[usz(d)])] = v;
        head[usz(d)] = v;
    };
    auto bucket_remove = [&](index_t v, index_t d) {
        if (dprev[usz(v)] >= 0)
            dnext[usz(dprev[usz(v)])] = dnext[usz(v)];
        else
            head[usz(d)] = dnext[usz(v)];
        if (dnext[usz(v)] >= 0) dprev[usz(dnext[usz(v)])] = dprev[usz(v)];
    };
    for (index_t v = 0; v < n; ++v)
        if (state[usz(v)] == kVar) bucket_insert(v, degree[usz(v)]);

    std::vector<index_t> mark(usz(n), 0);   ///< reach marker, stamped per pivot
    std::vector<index_t> wmark(usz(n), 0);  ///< validity stamp for w[]
    std::vector<index_t> w(usz(n), 0);      ///< |Le \ Lp| scratch per element
    index_t stamp = 0;

    /// Current weight of element e's variable list (skipping stale entries).
    auto element_weight = [&](index_t e) {
        index_t s = 0;
        for (const index_t v : vadj[usz(e)])
            if (state[usz(v)] == kVar && nv[usz(v)] > 0) s += nv[usz(v)];
        return s;
    };

    std::vector<index_t> lp;  ///< pivot reach (live supervariables)
    lp.reserve(usz(n));
    std::vector<std::pair<index_t, index_t>> hashes;  ///< (hash, var) pairs

    index_t ordered = 0;  ///< original live variables output so far
    index_t mind = 0;
    while (ordered < nlive) {
        while (mind < n && head[usz(mind)] < 0) ++mind;
        OPMSIM_ENSURE(mind < n, "amd_ordering: degree lists exhausted early");
        const index_t p = head[usz(mind)];
        bucket_remove(p, mind);

        // --- Lp: variables of A_p plus variables of every element of p.
        ++stamp;
        mark[usz(p)] = stamp;
        lp.clear();
        for (const index_t v : vadj[usz(p)])
            if (state[usz(v)] == kVar && nv[usz(v)] > 0 && mark[usz(v)] != stamp) {
                mark[usz(v)] = stamp;
                lp.push_back(v);
            }
        for (const index_t e : eadj[usz(p)]) {
            if (state[usz(e)] != kElement) continue;
            for (const index_t v : vadj[usz(e)])
                if (state[usz(v)] == kVar && nv[usz(v)] > 0 && mark[usz(v)] != stamp) {
                    mark[usz(v)] = stamp;
                    lp.push_back(v);
                }
            state[usz(e)] = kAbsorbed;  // covered by the new element p
        }
        index_t lp_weight = 0;
        for (const index_t v : lp) lp_weight += nv[usz(v)];

        // --- one-pass |Le \ Lp| for every element touching the reach.
        for (const index_t i : lp)
            for (const index_t e : eadj[usz(i)]) {
                if (state[usz(e)] != kElement) continue;
                if (wmark[usz(e)] != stamp) {
                    wmark[usz(e)] = stamp;
                    w[usz(e)] = element_weight(e);
                }
                w[usz(e)] -= nv[usz(i)];
            }

        // --- eliminate p: emit its member chain.
        state[usz(p)] = kElement;
        ordered += nv[usz(p)];
        for (index_t mv = mem_head[usz(p)]; mv >= 0; mv = mem_next[usz(mv)])
            order.push_back(mv);
        nv[usz(p)] = 0;
        const index_t remaining = nlive - ordered;

        // --- degree update + list pruning for each reach variable.
        for (const index_t i : lp) {
            bucket_remove(i, degree[usz(i)]);

            // Variables inside Lp are now connected through element p;
            // drop them (and stale entries) from i's variable list.
            auto& vl = vadj[usz(i)];
            std::size_t keep = 0;
            for (const index_t v : vl)
                if (state[usz(v)] == kVar && nv[usz(v)] > 0 && mark[usz(v)] != stamp)
                    vl[keep++] = v;
            vl.resize(keep);

            // Keep live elements; aggressive absorption deletes any element
            // whose remaining variables are all inside Lp (w == 0).  Every
            // live element reachable from i was stamped by the one-pass
            // |Le \ Lp| loop above (it iterated these exact (i, e) pairs),
            // so w[e] is always current here.
            auto& el = eadj[usz(i)];
            keep = 0;
            index_t ext_elems = 0;
            for (const index_t e : el) {
                if (state[usz(e)] != kElement) continue;
                if (w[usz(e)] <= 0) {
                    state[usz(e)] = kAbsorbed;
                    continue;
                }
                ext_elems += w[usz(e)];
                el[keep++] = e;
            }
            el.resize(keep);
            el.push_back(p);

            index_t ext_vars = 0;
            for (const index_t v : vl) ext_vars += nv[usz(v)];

            // Approximate external degree (Amestoy–Davis–Duff bounds).
            index_t d = ext_vars + ext_elems + (lp_weight - nv[usz(i)]);
            d = std::min(d, degree[usz(i)] + (lp_weight - nv[usz(i)]));
            d = std::min(d, remaining - nv[usz(i)]);
            degree[usz(i)] = std::max<index_t>(d, 0);
        }

        // --- mass elimination: merge indistinguishable reach variables.
        hashes.clear();
        for (const index_t i : lp) {
            index_t h = 0;
            for (const index_t v : vadj[usz(i)]) h += v;
            for (const index_t e : eadj[usz(i)]) h += e;
            hashes.emplace_back(h % n, i);
        }
        std::sort(hashes.begin(), hashes.end());
        for (std::size_t s = 0; s < hashes.size(); ++s) {
            const index_t i = hashes[s].second;
            if (nv[usz(i)] == 0) continue;
            // No later entry shares the hash => no merge candidate; skip
            // the adjacency sorts (the common singleton-bucket case).
            if (s + 1 >= hashes.size() || hashes[s + 1].first != hashes[s].first)
                continue;
            std::sort(vadj[usz(i)].begin(), vadj[usz(i)].end());
            std::sort(eadj[usz(i)].begin(), eadj[usz(i)].end());
            for (std::size_t t = s + 1;
                 t < hashes.size() && hashes[t].first == hashes[s].first; ++t) {
                const index_t j = hashes[t].second;
                if (nv[usz(j)] == 0) continue;
                std::sort(vadj[usz(j)].begin(), vadj[usz(j)].end());
                std::sort(eadj[usz(j)].begin(), eadj[usz(j)].end());
                if (vadj[usz(i)] != vadj[usz(j)] || eadj[usz(i)] != eadj[usz(j)])
                    continue;
                // j is indistinguishable from i: absorb it.
                degree[usz(i)] -= nv[usz(j)];
                nv[usz(i)] += nv[usz(j)];
                nv[usz(j)] = 0;
                state[usz(j)] = kAbsorbed;
                mem_next[usz(mem_tail[usz(i)])] = mem_head[usz(j)];
                mem_tail[usz(i)] = mem_tail[usz(j)];
                vadj[usz(j)].clear();
                eadj[usz(j)].clear();
            }
        }

        // --- reinsert survivors; element p's list is the compacted reach.
        auto& pl = vadj[usz(p)];
        pl.clear();
        for (const index_t i : lp) {
            if (nv[usz(i)] == 0) continue;
            pl.push_back(i);
            const index_t d =
                std::clamp<index_t>(degree[usz(i)], 0, n - 1);
            degree[usz(i)] = d;
            bucket_insert(i, d);
            mind = std::min(mind, d);
        }
        eadj[usz(p)].clear();
    }

    // Deferred dense rows are ordered last, lowest original degree first.
    std::vector<index_t> dense;
    for (index_t v = 0; v < n; ++v)
        if (state[usz(v)] == kDense) dense.push_back(v);
    std::sort(dense.begin(), dense.end(), [&](index_t x, index_t y) {
        return std::make_pair(g.degree(x), x) < std::make_pair(g.degree(y), y);
    });
    order.insert(order.end(), dense.begin(), dense.end());

    OPMSIM_ENSURE(static_cast<index_t>(order.size()) == n,
                  "amd_ordering: output is not a permutation");
    return order;
}

index_t bandwidth(const CscMatrix& a, const std::vector<index_t>& perm) {
    OPMSIM_REQUIRE(static_cast<index_t>(perm.size()) == a.rows(),
                   "bandwidth: permutation size mismatch");
    std::vector<index_t> inv(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
        inv[usz(perm[k])] = static_cast<index_t>(k);
    index_t bw = 0;
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_ind();
    for (index_t j = 0; j < a.cols(); ++j)
        for (index_t p = cp[usz(j)]; p < cp[usz(j) + 1]; ++p) {
            const index_t i = ri[usz(p)];
            bw = std::max(bw, std::abs(inv[usz(i)] - inv[usz(j)]));
        }
    return bw;
}

std::vector<index_t> natural_ordering(index_t n) {
    std::vector<index_t> p(usz(n));
    std::iota(p.begin(), p.end(), index_t{0});
    return p;
}

} // namespace opmsim::la
