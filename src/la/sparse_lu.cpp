#include "la/sparse_lu.hpp"

#include <algorithm>
#include <cmath>

namespace opmsim::la {

namespace {

/// Iterative depth-first search computing the nonzero pattern (reach) of
/// the solution of L x = b for one column.  Edges: original row r with
/// pivot position k = pinv[r] points to the rows of L(:,k).  Emits vertices
/// in reverse postorder into `topo` (back to front), which is a topological
/// order of the dependency DAG.
class ReachDfs {
public:
    explicit ReachDfs(index_t n)
        : mark_(static_cast<std::size_t>(n), -1),
          row_stack_(static_cast<std::size_t>(n)),
          ptr_stack_(static_cast<std::size_t>(n)) {}

    /// Start a new column; `stamp` must be unique per column.
    void begin(int stamp) {
        stamp_ = stamp;
        topo_.clear();
    }

    void dfs_from(index_t root, const std::vector<index_t>& l_colp,
                  const std::vector<index_t>& l_rowi, const std::vector<index_t>& pinv) {
        if (mark_[static_cast<std::size_t>(root)] == stamp_) return;
        index_t top = 0;
        row_stack_[0] = root;
        ptr_stack_[0] = -1;  // -1 => not yet expanded
        mark_[static_cast<std::size_t>(root)] = stamp_;
        while (top >= 0) {
            const index_t r = row_stack_[static_cast<std::size_t>(top)];
            const index_t k = pinv[static_cast<std::size_t>(r)];
            index_t p = ptr_stack_[static_cast<std::size_t>(top)];
            if (p < 0) p = (k >= 0) ? l_colp[static_cast<std::size_t>(k)] : 0;
            const index_t pend = (k >= 0) ? l_colp[static_cast<std::size_t>(k) + 1] : 0;
            bool descended = false;
            while (p < pend) {
                const index_t child = l_rowi[static_cast<std::size_t>(p)];
                ++p;
                if (mark_[static_cast<std::size_t>(child)] != stamp_) {
                    mark_[static_cast<std::size_t>(child)] = stamp_;
                    ptr_stack_[static_cast<std::size_t>(top)] = p;
                    ++top;
                    row_stack_[static_cast<std::size_t>(top)] = child;
                    ptr_stack_[static_cast<std::size_t>(top)] = -1;
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                topo_.push_back(r);  // postorder
                --top;
            }
        }
    }

    /// Pattern in topological (reverse-post) order.
    [[nodiscard]] std::vector<index_t> take_topo() {
        std::reverse(topo_.begin(), topo_.end());
        return std::move(topo_);
    }

private:
    int stamp_ = -1;
    std::vector<int> mark_;
    std::vector<index_t> row_stack_;
    std::vector<index_t> ptr_stack_;
    std::vector<index_t> topo_;
};

} // namespace

SparseLu::SparseLu(const CscMatrix& a, SparseLuOptions opt) : n_(a.rows()) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "SparseLu: square matrix required");
    OPMSIM_REQUIRE(opt.pivot_tol >= 0.0 && opt.pivot_tol <= 1.0,
                   "SparseLu: pivot_tol must be in [0,1]");
    const index_t n = n_;

    perm_cols_ = (opt.ordering == SparseLuOptions::Ordering::rcm) ? rcm_ordering(a)
                                                                  : natural_ordering(n);

    pinv_.assign(static_cast<std::size_t>(n), -1);
    perm_rows_.assign(static_cast<std::size_t>(n), -1);
    l_colp_.assign(1, 0);
    u_colp_.assign(1, 0);
    u_diag_.resize(static_cast<std::size_t>(n));

    Vectord x(static_cast<std::size_t>(n), 0.0);
    ReachDfs dfs(n);
    const auto& acp = a.col_ptr();
    const auto& ari = a.row_ind();
    const auto& avl = a.values();

    for (index_t j = 0; j < n; ++j) {
        const index_t aj = perm_cols_[static_cast<std::size_t>(j)];

        // --- symbolic: reach of column aj's pattern through L's DAG.
        dfs.begin(static_cast<int>(j));
        for (index_t p = acp[static_cast<std::size_t>(aj)];
             p < acp[static_cast<std::size_t>(aj) + 1]; ++p)
            dfs.dfs_from(ari[static_cast<std::size_t>(p)], l_colp_, l_rowi_, pinv_);
        const std::vector<index_t> pattern = dfs.take_topo();

        // --- numeric: scatter b, then eliminate in topological order.
        for (index_t p = acp[static_cast<std::size_t>(aj)];
             p < acp[static_cast<std::size_t>(aj) + 1]; ++p)
            x[static_cast<std::size_t>(ari[static_cast<std::size_t>(p)])] =
                avl[static_cast<std::size_t>(p)];

        for (const index_t r : pattern) {
            const index_t k = pinv_[static_cast<std::size_t>(r)];
            if (k < 0) continue;  // unpivoted row: below the diagonal, no outedges
            const double xr = x[static_cast<std::size_t>(r)];
            if (xr == 0.0) continue;
            for (index_t p = l_colp_[static_cast<std::size_t>(k)];
                 p < l_colp_[static_cast<std::size_t>(k) + 1]; ++p)
                x[static_cast<std::size_t>(l_rowi_[static_cast<std::size_t>(p)])] -=
                    l_val_[static_cast<std::size_t>(p)] * xr;
        }

        // --- pivot: among unpivoted rows, prefer the structural diagonal
        // (original row aj) when it passes the threshold test.
        double cmax = 0.0;
        index_t rpiv = -1;
        for (const index_t r : pattern) {
            if (pinv_[static_cast<std::size_t>(r)] >= 0) continue;
            const double v = std::abs(x[static_cast<std::size_t>(r)]);
            if (v > cmax) {
                cmax = v;
                rpiv = r;
            }
        }
        if (rpiv < 0 || cmax == 0.0)
            throw numerical_error("SparseLu: matrix is singular at column " +
                                  std::to_string(j));
        const double xdiag =
            (pinv_[static_cast<std::size_t>(aj)] < 0) ? std::abs(x[static_cast<std::size_t>(aj)]) : 0.0;
        if (xdiag >= opt.pivot_tol * cmax && xdiag > 0.0) {
            rpiv = aj;
        } else if (rpiv != aj) {
            ++offdiag_pivots_;
        }
        const double pivot = x[static_cast<std::size_t>(rpiv)];
        pinv_[static_cast<std::size_t>(rpiv)] = j;
        perm_rows_[static_cast<std::size_t>(j)] = rpiv;
        u_diag_[static_cast<std::size_t>(j)] = pivot;

        // --- gather into U (pivoted rows) and L (unpivoted rows / pivot).
        for (const index_t r : pattern) {
            const double v = x[static_cast<std::size_t>(r)];
            x[static_cast<std::size_t>(r)] = 0.0;  // reset scratch
            const index_t k = pinv_[static_cast<std::size_t>(r)];
            if (r == rpiv) continue;
            if (k >= 0 && k < j) {
                if (v != 0.0) {
                    u_rowi_.push_back(k);
                    u_val_.push_back(v);
                }
            } else {
                if (v != 0.0) {
                    l_rowi_.push_back(r);
                    l_val_.push_back(v / pivot);
                }
            }
        }
        u_colp_.push_back(static_cast<index_t>(u_val_.size()));
        l_colp_.push_back(static_cast<index_t>(l_val_.size()));
    }

    work_.assign(static_cast<std::size_t>(n), 0.0);
}

void SparseLu::solve_in_place(Vectord& b) const {
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n_, "SparseLu::solve: size mismatch");
    const index_t n = n_;
    Vectord& y = work_;
    std::copy(b.begin(), b.end(), y.begin());

    // Forward solve L z = P b, working in original row space: after
    // processing factor column k, y[perm_rows_[k]] holds z_k.
    for (index_t k = 0; k < n; ++k) {
        const double zk = y[static_cast<std::size_t>(perm_rows_[static_cast<std::size_t>(k)])];
        if (zk == 0.0) continue;
        for (index_t p = l_colp_[static_cast<std::size_t>(k)];
             p < l_colp_[static_cast<std::size_t>(k) + 1]; ++p)
            y[static_cast<std::size_t>(l_rowi_[static_cast<std::size_t>(p)])] -=
                l_val_[static_cast<std::size_t>(p)] * zk;
    }

    // Backward solve U w = z in pivot space (reuse b as w).
    for (index_t k = 0; k < n; ++k)
        b[static_cast<std::size_t>(k)] =
            y[static_cast<std::size_t>(perm_rows_[static_cast<std::size_t>(k)])];
    for (index_t j = n - 1; j >= 0; --j) {
        const double wj = b[static_cast<std::size_t>(j)] / u_diag_[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(j)] = wj;
        if (wj == 0.0) continue;
        for (index_t p = u_colp_[static_cast<std::size_t>(j)];
             p < u_colp_[static_cast<std::size_t>(j) + 1]; ++p)
            b[static_cast<std::size_t>(u_rowi_[static_cast<std::size_t>(p)])] -=
                u_val_[static_cast<std::size_t>(p)] * wj;
    }

    // Undo the column permutation: x[perm_cols_[j]] = w_j.
    for (index_t j = 0; j < n; ++j)
        y[static_cast<std::size_t>(perm_cols_[static_cast<std::size_t>(j)])] =
            b[static_cast<std::size_t>(j)];
    std::copy(y.begin(), y.end(), b.begin());
}

Vectord SparseLu::solve(Vectord b) const {
    solve_in_place(b);
    return b;
}

} // namespace opmsim::la
