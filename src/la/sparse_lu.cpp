#include "la/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace opmsim::la {

namespace {

inline std::size_t usz(index_t v) { return static_cast<std::size_t>(v); }

/// Iterative depth-first search computing the nonzero pattern (reach) of
/// the solution of L x = b for one column.  Edges: original row r with
/// pivot position k = pinv[r] points to the rows of L(:,k).  Emits vertices
/// in reverse postorder into `topo` (back to front), which is a topological
/// order of the dependency DAG.
class ReachDfs {
public:
    explicit ReachDfs(index_t n)
        : mark_(usz(n), -1), row_stack_(usz(n)), ptr_stack_(usz(n)) {}

    /// Start a new column; `stamp` must be unique per column.
    void begin(int stamp) {
        stamp_ = stamp;
        topo_.clear();
    }

    void dfs_from(index_t root, const std::vector<index_t>& l_colp,
                  const std::vector<index_t>& l_rowi, const std::vector<index_t>& pinv) {
        if (mark_[usz(root)] == stamp_) return;
        index_t top = 0;
        row_stack_[0] = root;
        ptr_stack_[0] = -1;  // -1 => not yet expanded
        mark_[usz(root)] = stamp_;
        while (top >= 0) {
            const index_t r = row_stack_[usz(top)];
            const index_t k = pinv[usz(r)];
            index_t p = ptr_stack_[usz(top)];
            if (p < 0) p = (k >= 0) ? l_colp[usz(k)] : 0;
            const index_t pend = (k >= 0) ? l_colp[usz(k) + 1] : 0;
            bool descended = false;
            while (p < pend) {
                const index_t child = l_rowi[usz(p)];
                ++p;
                if (mark_[usz(child)] != stamp_) {
                    mark_[usz(child)] = stamp_;
                    ptr_stack_[usz(top)] = p;
                    ++top;
                    row_stack_[usz(top)] = child;
                    ptr_stack_[usz(top)] = -1;
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                topo_.push_back(r);  // postorder
                --top;
            }
        }
    }

    /// Pattern in topological (reverse-post) order.
    [[nodiscard]] std::vector<index_t> take_topo() {
        std::reverse(topo_.begin(), topo_.end());
        return std::move(topo_);
    }

private:
    int stamp_ = -1;
    std::vector<int> mark_;
    std::vector<index_t> row_stack_;
    std::vector<index_t> ptr_stack_;
    std::vector<index_t> topo_;
};

/// nnz(L) of the Cholesky factor of the permuted symmetrized pattern,
/// via Liu's elimination-tree algorithm and row-subtree column counts
/// (O(nnz(L)) time, O(n) extra memory, no factor storage).
index_t cholesky_factor_nnz(const SymmetricPattern& g, const std::vector<index_t>& perm) {
    const index_t n = g.size();
    std::vector<index_t> inv(usz(n));
    for (index_t k = 0; k < n; ++k) inv[usz(perm[usz(k)])] = k;

    std::vector<index_t> parent(usz(n), -1), ancestor(usz(n), -1);
    for (index_t i = 0; i < n; ++i) {
        const index_t v = perm[usz(i)];
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            index_t r = inv[usz(g.adj[usz(p)])];
            if (r >= i) continue;
            // Walk to the root, path-compressing onto i.
            while (ancestor[usz(r)] >= 0 && ancestor[usz(r)] != i) {
                const index_t next = ancestor[usz(r)];
                ancestor[usz(r)] = i;
                r = next;
            }
            if (ancestor[usz(r)] < 0) {
                ancestor[usz(r)] = i;
                parent[usz(r)] = i;
            }
        }
    }

    index_t nnz_l = n;  // diagonal
    std::vector<index_t> seen(usz(n), -1);
    for (index_t i = 0; i < n; ++i) {
        seen[usz(i)] = i;
        const index_t v = perm[usz(i)];
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            index_t r = inv[usz(g.adj[usz(p)])];
            if (r >= i) continue;
            // Row subtree of i: every column on the path gains entry (i, .).
            while (seen[usz(r)] != i) {
                seen[usz(r)] = i;
                ++nnz_l;
                r = parent[usz(r)];
            }
        }
    }
    return nnz_l;
}

} // namespace

SparseLuSymbolic::SparseLuSymbolic(const CscMatrix& a, SparseLuOptions opt)
    : n_(a.rows()), opt_(opt) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "SparseLuSymbolic: square matrix required");
    OPMSIM_REQUIRE(opt.pivot_tol >= 0.0 && opt.pivot_tol <= 1.0,
                   "SparseLuSymbolic: pivot_tol must be in [0,1]");

    const SymmetricPattern g = symmetrized_pattern(a);
    mean_degree_ = g.mean_degree();
    chosen_ = opt.ordering;
    if (chosen_ == SparseLuOptions::Ordering::automatic) {
        // Density policy: path/ladder-like patterns (mean off-diagonal
        // degree ~2) have a tiny band that RCM recovers exactly; anything
        // denser (meshes, grids) fills far less under minimum degree.
        chosen_ = (mean_degree_ <= 2.5) ? SparseLuOptions::Ordering::rcm
                                        : SparseLuOptions::Ordering::amd;
    }
    switch (chosen_) {
    case SparseLuOptions::Ordering::natural: perm_cols_ = natural_ordering(n_); break;
    case SparseLuOptions::Ordering::rcm: perm_cols_ = rcm_ordering(g); break;
    default: perm_cols_ = amd_ordering(g); break;
    }
    fill_estimate_ = 2 * cholesky_factor_nnz(g, perm_cols_) - n_;
    a_colp_ = a.col_ptr();
    a_rowi_ = a.row_ind();
}

SparseLu::SparseLu(const CscMatrix& a, SparseLuOptions opt)
    : SparseLu(a, std::make_shared<const SparseLuSymbolic>(a, opt)) {}

SparseLu::SparseLu(const CscMatrix& a, std::shared_ptr<const SparseLuSymbolic> symbolic)
    : n_(a.rows()), symbolic_(std::move(symbolic)) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "SparseLu: square matrix required");
    OPMSIM_REQUIRE(symbolic_ != nullptr, "SparseLu: null symbolic analysis");
    OPMSIM_REQUIRE(symbolic_->size() == n_,
                   "SparseLu: symbolic analysis size mismatch");
    OPMSIM_REQUIRE(a.col_ptr() == symbolic_->pattern_colp() &&
                       a.row_ind() == symbolic_->pattern_rowi(),
                   "SparseLu: matrix pattern differs from the analyzed one");
    factorize(a);
}

void SparseLu::factorize(const CscMatrix& a) {
    const index_t n = n_;
    const double pivot_tol = symbolic_->options().pivot_tol;
    const std::vector<index_t>& perm_cols = symbolic_->perm_cols();

    pinv_.assign(usz(n), -1);
    perm_rows_.assign(usz(n), -1);
    l_colp_.assign(1, 0);
    u_colp_.assign(1, 0);
    u_diag_.resize(usz(n));

    // The symmetric fill estimate sizes the factors up front: half below
    // the diagonal (L), half above (U), exact when pivots stay diagonal.
    const index_t est_offdiag =
        std::max<index_t>(0, (symbolic_->fill_estimate() - n) / 2);
    l_rowi_.reserve(usz(est_offdiag));
    l_val_.reserve(usz(est_offdiag));
    u_rowi_.reserve(usz(est_offdiag));
    u_val_.reserve(usz(est_offdiag));

    Vectord x(usz(n), 0.0);
    ReachDfs dfs(n);
    const auto& acp = a.col_ptr();
    const auto& ari = a.row_ind();
    const auto& avl = a.values();

    for (index_t j = 0; j < n; ++j) {
        const index_t aj = perm_cols[usz(j)];

        // --- symbolic: reach of column aj's pattern through L's DAG.
        dfs.begin(static_cast<int>(j));
        for (index_t p = acp[usz(aj)]; p < acp[usz(aj) + 1]; ++p)
            dfs.dfs_from(ari[usz(p)], l_colp_, l_rowi_, pinv_);
        const std::vector<index_t> pattern = dfs.take_topo();

        // --- numeric: scatter b, then eliminate in topological order.
        for (index_t p = acp[usz(aj)]; p < acp[usz(aj) + 1]; ++p)
            x[usz(ari[usz(p)])] = avl[usz(p)];

        for (const index_t r : pattern) {
            const index_t k = pinv_[usz(r)];
            if (k < 0) continue;  // unpivoted row: below the diagonal, no outedges
            const double xr = x[usz(r)];
            if (xr == 0.0) continue;
            for (index_t p = l_colp_[usz(k)]; p < l_colp_[usz(k) + 1]; ++p)
                x[usz(l_rowi_[usz(p)])] -= l_val_[usz(p)] * xr;
        }

        // --- pivot: among unpivoted rows, prefer the structural diagonal
        // (original row aj) when it passes the threshold test.
        double cmax = 0.0;
        index_t rpiv = -1;
        for (const index_t r : pattern) {
            if (pinv_[usz(r)] >= 0) continue;
            const double v = std::abs(x[usz(r)]);
            if (v > cmax) {
                cmax = v;
                rpiv = r;
            }
        }
        if (rpiv < 0 || cmax == 0.0)
            throw numerical_error("SparseLu: matrix is singular at column " +
                                  std::to_string(j));
        const double xdiag = (pinv_[usz(aj)] < 0) ? std::abs(x[usz(aj)]) : 0.0;
        if (xdiag >= pivot_tol * cmax && xdiag > 0.0) {
            rpiv = aj;
        } else if (rpiv != aj) {
            ++offdiag_pivots_;
        }
        const double pivot = x[usz(rpiv)];
        pinv_[usz(rpiv)] = j;
        perm_rows_[usz(j)] = rpiv;
        u_diag_[usz(j)] = pivot;

        // --- gather into U (pivoted rows) and L (unpivoted rows / pivot).
        // Every reach entry is kept, zero-valued or not: the stored pattern
        // must stay value-independent so refactor() can replay it exactly.
        for (const index_t r : pattern) {
            const double v = x[usz(r)];
            x[usz(r)] = 0.0;  // reset scratch
            const index_t k = pinv_[usz(r)];
            if (r == rpiv) continue;
            if (k >= 0 && k < j) {
                u_rowi_.push_back(k);
                u_val_.push_back(v);
            } else {
                l_rowi_.push_back(r);
                l_val_.push_back(v / pivot);
            }
        }
        u_colp_.push_back(static_cast<index_t>(u_val_.size()));
        l_colp_.push_back(static_cast<index_t>(l_val_.size()));
    }

    work_.assign(usz(n), 0.0);
}

void SparseLu::refactor(const CscMatrix& a) {
    OPMSIM_REQUIRE(a.rows() == n_ && a.cols() == n_,
                   "SparseLu::refactor: size mismatch");
    OPMSIM_REQUIRE(a.col_ptr() == symbolic_->pattern_colp() &&
                       a.row_ind() == symbolic_->pattern_rowi(),
                   "SparseLu::refactor: sparsity pattern differs from the "
                   "factored matrix (build a new SparseLu instead)");
    const index_t n = n_;
    const std::vector<index_t>& perm_cols = symbolic_->perm_cols();
    const std::vector<index_t>& a_colp = a.col_ptr();
    const std::vector<index_t>& a_rowi = a.row_ind();
    const auto& avl = a.values();
    Vectord& x = work_;  // solves leave stale values behind — reset first
    std::fill(x.begin(), x.end(), 0.0);

    for (index_t j = 0; j < n; ++j) {
        const index_t aj = perm_cols[usz(j)];
        for (index_t p = a_colp[usz(aj)]; p < a_colp[usz(aj) + 1]; ++p)
            x[usz(a_rowi[usz(p)])] = avl[usz(p)];

        // Replay the frozen U pattern in its stored elimination order.
        for (index_t p = u_colp_[usz(j)]; p < u_colp_[usz(j) + 1]; ++p) {
            const index_t k = u_rowi_[usz(p)];
            const index_t r = perm_rows_[usz(k)];
            const double xr = x[usz(r)];
            x[usz(r)] = 0.0;
            u_val_[usz(p)] = xr;
            if (xr == 0.0) continue;
            for (index_t q = l_colp_[usz(k)]; q < l_colp_[usz(k) + 1]; ++q)
                x[usz(l_rowi_[usz(q)])] -= l_val_[usz(q)] * xr;
        }

        const index_t rpiv = perm_rows_[usz(j)];
        const double pivot = x[usz(rpiv)];
        x[usz(rpiv)] = 0.0;
        if (pivot == 0.0)
            throw numerical_error(
                "SparseLu::refactor: frozen pivot vanished at column " +
                std::to_string(j) + "; a full factorization is required");
        u_diag_[usz(j)] = pivot;

        for (index_t q = l_colp_[usz(j)]; q < l_colp_[usz(j) + 1]; ++q) {
            const index_t r = l_rowi_[usz(q)];
            l_val_[usz(q)] = x[usz(r)] / pivot;
            x[usz(r)] = 0.0;
        }
    }
}

void SparseLu::solve_in_place(Vectord& b) const {
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n_, "SparseLu::solve: size mismatch");
    const index_t n = n_;
    Vectord& y = work_;
    std::copy(b.begin(), b.end(), y.begin());

    // Forward solve L z = P b, working in original row space: after
    // processing factor column k, y[perm_rows_[k]] holds z_k.
    for (index_t k = 0; k < n; ++k) {
        const double zk = y[usz(perm_rows_[usz(k)])];
        if (zk == 0.0) continue;
        for (index_t p = l_colp_[usz(k)]; p < l_colp_[usz(k) + 1]; ++p)
            y[usz(l_rowi_[usz(p)])] -= l_val_[usz(p)] * zk;
    }

    // Backward solve U w = z in pivot space (reuse b as w).
    for (index_t k = 0; k < n; ++k) b[usz(k)] = y[usz(perm_rows_[usz(k)])];
    for (index_t j = n - 1; j >= 0; --j) {
        const double wj = b[usz(j)] / u_diag_[usz(j)];
        b[usz(j)] = wj;
        if (wj == 0.0) continue;
        for (index_t p = u_colp_[usz(j)]; p < u_colp_[usz(j) + 1]; ++p)
            b[usz(u_rowi_[usz(p)])] -= u_val_[usz(p)] * wj;
    }

    // Undo the column permutation: x[perm_cols[j]] = w_j.
    const std::vector<index_t>& perm_cols = symbolic_->perm_cols();
    for (index_t j = 0; j < n; ++j) y[usz(perm_cols[usz(j)])] = b[usz(j)];
    std::copy(y.begin(), y.end(), b.begin());
}

Vectord SparseLu::solve(Vectord b) const {
    solve_in_place(b);
    return b;
}

} // namespace opmsim::la
