#include "la/sparse_lu.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <utility>

#include "la/dense.hpp"
#include "la/triangular.hpp"
#include "util/fault_inject.hpp"
#include "util/serial.hpp"
#include "util/status.hpp"

namespace opmsim::la {

namespace {

inline std::size_t usz(index_t v) { return static_cast<std::size_t>(v); }

/// Iterative depth-first search computing the nonzero pattern (reach) of
/// the solution of L x = b for one column.  Edges: original row r with
/// pivot position k = pinv[r] points to the rows of L(:,k).  Emits vertices
/// in reverse postorder into `topo` (back to front), which is a topological
/// order of the dependency DAG.
class ReachDfs {
public:
    explicit ReachDfs(index_t n)
        : mark_(usz(n), -1), row_stack_(usz(n)), ptr_stack_(usz(n)) {}

    /// Start a new column; `stamp` must be unique per column.
    void begin(int stamp) {
        stamp_ = stamp;
        topo_.clear();
    }

    void dfs_from(index_t root, const std::vector<index_t>& l_colp,
                  const std::vector<index_t>& l_rowi, const std::vector<index_t>& pinv) {
        if (mark_[usz(root)] == stamp_) return;
        index_t top = 0;
        row_stack_[0] = root;
        ptr_stack_[0] = -1;  // -1 => not yet expanded
        mark_[usz(root)] = stamp_;
        while (top >= 0) {
            const index_t r = row_stack_[usz(top)];
            const index_t k = pinv[usz(r)];
            index_t p = ptr_stack_[usz(top)];
            if (p < 0) p = (k >= 0) ? l_colp[usz(k)] : 0;
            const index_t pend = (k >= 0) ? l_colp[usz(k) + 1] : 0;
            bool descended = false;
            while (p < pend) {
                const index_t child = l_rowi[usz(p)];
                ++p;
                if (mark_[usz(child)] != stamp_) {
                    mark_[usz(child)] = stamp_;
                    ptr_stack_[usz(top)] = p;
                    ++top;
                    row_stack_[usz(top)] = child;
                    ptr_stack_[usz(top)] = -1;
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                topo_.push_back(r);  // postorder
                --top;
            }
        }
    }

    /// Pattern in topological (reverse-post) order.
    [[nodiscard]] std::vector<index_t> take_topo() {
        std::reverse(topo_.begin(), topo_.end());
        return std::move(topo_);
    }

private:
    int stamp_ = -1;
    std::vector<int> mark_;
    std::vector<index_t> row_stack_;
    std::vector<index_t> ptr_stack_;
    std::vector<index_t> topo_;
};

/// Position of `row` inside the sorted below-panel row segment
/// [first, last) of a supernode.  The static structure guarantees presence;
/// a miss is a logic error, not a data condition.
index_t srow_position(const std::vector<index_t>& srow, index_t first,
                      index_t last, index_t row) {
    const auto it = std::lower_bound(srow.begin() + first, srow.begin() + last, row);
    OPMSIM_ENSURE(it != srow.begin() + last && *it == row,
                  "SparseLu: entry outside the supernodal structure");
    return static_cast<index_t>(it - (srow.begin() + first));
}

/// Widest panel the supernode detection will form.  Bounds dense-panel
/// scratch and keeps the tiled GEMM operands cache-sized.
constexpr index_t kMaxPanel = 64;

/// C = A * B for the supernodal update blocks: overwriting (no zero-fill
/// pass) and untiled — the operands are panel slices at most kMaxPanel
/// wide, so the 64x64 tiling of la::gemm_acc would only add loop overhead
/// to what are typically sub-kilobyte multiplies.  Per output column the
/// k-accumulation order is ascending, matching gemm_acc.
inline void panel_mult(index_t mr, index_t nc, index_t kc,
                       const double* __restrict a, index_t lda,
                       const double* __restrict b, index_t ldb,
                       double* __restrict c) {
    for (index_t j = 0; j < nc; ++j) {
        double* __restrict cj = c + j * mr;
        const double* __restrict bj = b + j * ldb;
        const double b0 = bj[0];
        for (index_t i = 0; i < mr; ++i) cj[i] = a[i] * b0;
        for (index_t k = 1; k < kc; ++k) {
            const double bkj = bj[k];
            if (bkj == 0.0) continue;
            const double* __restrict ak = a + k * lda;
            for (index_t i = 0; i < mr; ++i) cj[i] += ak[i] * bkj;
        }
    }
}

/// Thread-local solve/refactor scratch.  SparseLu factors may be shared
/// across the Engine's run_batch worker threads; per-thread scratch keeps
/// concurrent solves on one factor race-free without locking.
Vectord& thread_scratch(std::size_t need) {
    static thread_local Vectord buf;
    if (buf.size() < need) buf.resize(need);
    return buf;
}

} // namespace

SparseLuSymbolic::SparseLuSymbolic(const CscMatrix& a, SparseLuOptions opt)
    : n_(a.rows()), opt_(opt) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "SparseLuSymbolic: square matrix required");
    OPMSIM_REQUIRE(opt.pivot_tol >= 0.0 && opt.pivot_tol <= 1.0,
                   "SparseLuSymbolic: pivot_tol must be in [0,1]");

    const SymmetricPattern g = symmetrized_pattern(a);
    mean_degree_ = g.mean_degree();
    chosen_ = opt.ordering;
    if (chosen_ == SparseLuOptions::Ordering::automatic) {
        // Density policy: path/ladder-like patterns (mean off-diagonal
        // degree ~2) have a tiny band that RCM recovers exactly; anything
        // denser (meshes, grids) fills far less under minimum degree.
        chosen_ = (mean_degree_ <= 2.5) ? SparseLuOptions::Ordering::rcm
                                        : SparseLuOptions::Ordering::amd;
    }
    switch (chosen_) {
    case SparseLuOptions::Ordering::natural: perm_cols_ = natural_ordering(n_); break;
    case SparseLuOptions::Ordering::rcm: perm_cols_ = rcm_ordering(g); break;
    default: perm_cols_ = amd_ordering(g); break;
    }
    etree_ = elimination_tree(g, perm_cols_);
    fill_estimate_ = 2 * etree_.factor_nnz() - n_;
    a_colp_ = a.col_ptr();
    a_rowi_ = a.row_ind();

    if (opt.kernel == SparseLuOptions::Kernel::scalar || n_ == 0) return;

    // ---- etree postordering -------------------------------------------
    // AMD/RCM permutations are generally NOT topological orders of their
    // own elimination tree, so columns with identical structure land far
    // apart and no supernode can form.  Relabeling the columns by an etree
    // postorder is fill- and flop-invariant (it permutes within the same
    // tree) and makes every fundamental supernode a contiguous column run
    // — the standard preprocessing of supernodal codes.
    {
        const index_t n = n_;
        std::vector<index_t> child_head(usz(n), -1), child_next(usz(n), -1);
        for (index_t j = n - 1; j >= 0; --j) {
            const index_t p = etree_.parent[usz(j)];
            if (p >= 0) {
                child_next[usz(j)] = child_head[usz(p)];
                child_head[usz(p)] = j;  // descending fill => ascending lists
            }
        }
        std::vector<index_t> post;
        post.reserve(usz(n));
        std::vector<index_t> stack;
        for (index_t r = 0; r < n; ++r) {
            if (etree_.parent[usz(r)] >= 0) continue;  // roots only
            stack.push_back(~r);  // ~v marks "emit v on pop"
            while (!stack.empty()) {
                const index_t v = stack.back();
                stack.pop_back();
                if (v < 0) {
                    const index_t u = ~v;
                    stack.push_back(u);  // emit after children
                    for (index_t c = child_head[usz(u)]; c >= 0;
                         c = child_next[usz(c)])
                        stack.push_back(~c);
                } else {
                    post.push_back(v);
                }
            }
        }
        // post is built children-last per subtree; reverse the child
        // pushes give ascending DFS — emit order is a postorder either
        // way, determinism is what matters.  Compose and re-analyze.
        std::vector<index_t> np(usz(n));
        for (index_t k = 0; k < n; ++k) np[usz(k)] = perm_cols_[usz(post[usz(k)])];
        perm_cols_ = std::move(np);
        etree_ = elimination_tree(g, perm_cols_);
        fill_estimate_ = 2 * etree_.factor_nnz() - n_;
    }

    // ---- supernode partition of the permuted columns -----------------
    const std::vector<index_t>& parent = etree_.parent;
    const std::vector<index_t>& cc = etree_.col_count;

    // Fundamental supernodes: column j joins its predecessor's supernode
    // when j is the etree parent of j-1 and drops exactly one row from its
    // structure — the classic identical-below-structure test.
    std::vector<index_t> fund{0};
    for (index_t j = 1; j < n_; ++j) {
        const bool chain = parent[usz(j - 1)] == j && cc[usz(j)] == cc[usz(j - 1)] - 1;
        if (!chain || j - fund.back() >= kMaxPanel) fund.push_back(j);
    }
    fund.push_back(n_);

    // Relaxed amalgamation.  A postorder interval [a, c) is a valid
    // supernode whenever it lies inside the subtree of its last column
    // c-1 (first_desc[c-1] <= a): every column's below-interval structure
    // is then contained in struct(L(:,c-1)) by the etree path lemma, so
    // the shared panel row set is exactly that column's structure.  Merge
    // the next fundamental piece into the open run when the panel padding
    // this introduces (explicit zeros stored and factored as part of the
    // dense block) stays under a small budget — trading a few flops on
    // structural zeros for wider GEMM panels and fewer scatter passes.
    std::vector<index_t> first_desc(usz(n_));
    for (index_t j = 0; j < n_; ++j) first_desc[usz(j)] = j;
    for (index_t j = 0; j < n_; ++j) {
        const index_t p = parent[usz(j)];
        if (p >= 0)
            first_desc[usz(p)] = std::min(first_desc[usz(p)], first_desc[usz(j)]);
    }
    snode_ptr_.assign(1, 0);
    index_t true_cur = 0;  // structural entries of the run being built
    for (std::size_t f = 0; f + 1 < fund.size(); ++f) {
        const index_t b = fund[f], c = fund[f + 1];
        index_t piece = 0;
        for (index_t j = b; j < c; ++j) piece += cc[usz(j)];
        const index_t a0 = snode_ptr_.back();
        bool merged = false;
        if (b > a0) {  // a run [a0, b) is open — try to absorb [b, c)
            const index_t new_w = c - a0;
            const index_t nb_m = cc[usz(c - 1)] - 1;  // merged below-row count
            const index_t dense_tri =
                new_w * (new_w + nb_m) - new_w * (new_w - 1) / 2;
            const index_t extra = dense_tri - (true_cur + piece);
            if (first_desc[usz(c - 1)] <= a0 && new_w <= kMaxPanel &&
                extra <= std::max<index_t>(24, (true_cur + piece) / 8)) {
                true_cur += piece;
                merged = true;
            }
        }
        if (!merged) {
            if (b > a0) snode_ptr_.push_back(b);
            true_cur = piece;
        }
    }
    if (snode_ptr_.back() != n_) snode_ptr_.push_back(n_);

    const index_t nsup = static_cast<index_t>(snode_ptr_.size()) - 1;
    col_to_snode_.resize(usz(n_));
    for (index_t s = 0; s < nsup; ++s)
        for (index_t j = snode_ptr_[usz(s)]; j < snode_ptr_[usz(s) + 1]; ++j)
            col_to_snode_[usz(j)] = s;

    // ---- below-panel row structure (symbolic Cholesky by row subtrees):
    // row i appears in L(:, r) for every column r on the path from a
    // pattern entry up the etree toward i; collect each such i once per
    // supernode (the shared panel row set) and once per column (the
    // exact L pattern the CSC export uses).  Rows are visited in
    // increasing i, so all lists come out sorted.
    std::vector<index_t> inv(usz(n_));
    for (index_t k = 0; k < n_; ++k) inv[usz(perm_cols_[usz(k)])] = k;
    std::vector<index_t> seen(usz(n_), -1), sn_seen(usz(nsup), -1);
    std::vector<std::vector<index_t>> rows(usz(nsup));
    std::vector<std::vector<index_t>> lcols(usz(n_));
    for (index_t i = 0; i < n_; ++i) {
        seen[usz(i)] = i;
        const index_t v = perm_cols_[usz(i)];
        for (index_t p = g.ptr[usz(v)]; p < g.ptr[usz(v) + 1]; ++p) {
            index_t r = inv[usz(g.adj[usz(p)])];
            if (r >= i) continue;
            while (seen[usz(r)] != i) {
                seen[usz(r)] = i;
                lcols[usz(r)].push_back(i);
                const index_t s = col_to_snode_[usz(r)];
                if (i >= snode_ptr_[usz(s) + 1] && sn_seen[usz(s)] != i) {
                    sn_seen[usz(s)] = i;
                    rows[usz(s)].push_back(i);
                }
                r = parent[usz(r)];
            }
        }
    }
    srow_ptr_.assign(usz(nsup) + 1, 0);
    for (index_t s = 0; s < nsup; ++s)
        srow_ptr_[usz(s) + 1] =
            srow_ptr_[usz(s)] + static_cast<index_t>(rows[usz(s)].size());
    srow_.reserve(usz(srow_ptr_.back()));
    for (auto& list : rows) srow_.insert(srow_.end(), list.begin(), list.end());

    // Padding diagnostic: dense lower-panel entries minus structural ones.
    padding_ = 0;
    for (index_t s = 0; s < nsup; ++s) {
        const index_t w = snode_ptr_[usz(s) + 1] - snode_ptr_[usz(s)];
        const index_t nb = srow_ptr_[usz(s) + 1] - srow_ptr_[usz(s)];
        padding_ += w * (w + nb) - w * (w - 1) / 2;
    }
    for (const index_t c : cc) padding_ -= c;

    // ---- panel offsets + A-entry scatter map (pattern-only): resolving
    // every nonzero's panel destination once here turns each numeric
    // assembly (and every refactor) into one linear pass with no searches.
    lpan_off_.assign(usz(nsup) + 1, 0);
    upan_off_.assign(usz(nsup) + 1, 0);
    for (index_t s = 0; s < nsup; ++s) {
        const index_t w = snode_ptr_[usz(s) + 1] - snode_ptr_[usz(s)];
        const index_t nb = srow_ptr_[usz(s) + 1] - srow_ptr_[usz(s)];
        lpan_off_[usz(s) + 1] = lpan_off_[usz(s)] + (w + nb) * w;
        upan_off_[usz(s) + 1] = upan_off_[usz(s)] + w * nb;
    }
    {
        // Assembly schedule grouped by destination supernode: scatter A
        // value asm_src_[k] into panel slot asm_dst_[k] while supernode
        // asm_ptr_-group t is being assembled (cache-hot).
        std::vector<std::array<index_t, 3>> sched;  // (snode, dst, src)
        sched.reserve(a_rowi_.size());
        for (index_t aj = 0; aj < n_; ++aj) {
            const index_t jp = inv[usz(aj)];
            const index_t sj = col_to_snode_[usz(jp)];
            const index_t c0 = snode_ptr_[usz(sj)], c1 = snode_ptr_[usz(sj) + 1];
            const index_t h = (c1 - c0) + (srow_ptr_[usz(sj) + 1] - srow_ptr_[usz(sj)]);
            for (index_t p = a_colp_[usz(aj)]; p < a_colp_[usz(aj) + 1]; ++p) {
                const index_t ip = inv[usz(a_rowi_[usz(p)])];
                if (ip >= c0) {
                    const index_t local =
                        ip < c1 ? ip - c0
                                : (c1 - c0) + srow_position(srow_, srow_ptr_[usz(sj)],
                                                            srow_ptr_[usz(sj) + 1], ip);
                    sched.push_back({sj, lpan_off_[usz(sj)] + (jp - c0) * h + local, p});
                } else {
                    // Strictly-upper entry above the panel: row block of the
                    // supernode owning ip, at jp's position in its row list.
                    const index_t si = col_to_snode_[usz(ip)];
                    const index_t wi = snode_ptr_[usz(si) + 1] - snode_ptr_[usz(si)];
                    const index_t pos =
                        srow_position(srow_, srow_ptr_[usz(si)], srow_ptr_[usz(si) + 1], jp);
                    sched.push_back({si,
                                     ~(upan_off_[usz(si)] + pos * wi +
                                       (ip - snode_ptr_[usz(si)])),
                                     p});
                }
            }
        }
        std::sort(sched.begin(), sched.end());
        asm_ptr_.assign(usz(nsup) + 1, 0);
        asm_src_.resize(sched.size());
        asm_dst_.resize(sched.size());
        for (std::size_t k = 0; k < sched.size(); ++k) {
            ++asm_ptr_[usz(sched[k][0]) + 1];
            asm_dst_[k] = sched[k][1];
            asm_src_[k] = sched[k][2];
        }
        for (index_t t = 0; t < nsup; ++t) asm_ptr_[usz(t) + 1] += asm_ptr_[usz(t)];
    }

    // ---- exact-structure CSC export maps --------------------------------
    // Resolve every structural factor entry's panel position once here:
    // after each numeric factorization (and refactor) a single gather
    // pass produces the compact column storage the streaming solves
    // consume — panel padding never reaches the solve path.  Source
    // offset for L(i, r) / U(r, i) with i in struct(L(:, r)), i > r, and
    // supernode t owning r: in-panel when i < c1(t), the below row block
    // / the U row block at i's srow position otherwise.
    const auto lpan_pos = [&](index_t i, index_t r) {
        const index_t t = col_to_snode_[usz(r)];
        const index_t c0 = snode_ptr_[usz(t)], c1 = snode_ptr_[usz(t) + 1];
        const index_t h = (c1 - c0) + (srow_ptr_[usz(t) + 1] - srow_ptr_[usz(t)]);
        const index_t local =
            i < c1 ? i - c0
                   : (c1 - c0) + srow_position(srow_, srow_ptr_[usz(t)],
                                               srow_ptr_[usz(t) + 1], i);
        return lpan_off_[usz(t)] + (r - c0) * h + local;
    };
    const auto upan_pos = [&](index_t r, index_t i) {
        // U(r, i): row supernode t owns r; i is a column of its diagonal
        // block (i < c1, an lpan_ offset, >= 0) or of its U row block
        // (an upan_ offset, encoded as ~offset like the assembly map).
        const index_t t = col_to_snode_[usz(r)];
        const index_t c0 = snode_ptr_[usz(t)], c1 = snode_ptr_[usz(t) + 1];
        if (i < c1) {
            const index_t h =
                (c1 - c0) + (srow_ptr_[usz(t) + 1] - srow_ptr_[usz(t)]);
            return lpan_off_[usz(t)] + (i - c0) * h + (r - c0);
        }
        const index_t pos = srow_position(srow_, srow_ptr_[usz(t)],
                                          srow_ptr_[usz(t) + 1], i);
        return ~(upan_off_[usz(t)] + pos * (c1 - c0) + (r - c0));
    };

    xl_colp_.assign(usz(n_) + 1, 0);
    xu_colp_.assign(usz(n_) + 1, 0);
    for (index_t r = 0; r < n_; ++r) {
        const index_t cnt = static_cast<index_t>(lcols[usz(r)].size());
        xl_colp_[usz(r) + 1] = cnt;  // L column r entry count
        for (const index_t i : lcols[usz(r)]) ++xu_colp_[usz(i) + 1];
    }
    for (index_t r = 0; r < n_; ++r) {
        xl_colp_[usz(r) + 1] += xl_colp_[usz(r)];
        xu_colp_[usz(r) + 1] += xu_colp_[usz(r)];
    }
    const index_t nl = xl_colp_.back();
    const index_t nu = xu_colp_.back();
    xl_rowi_.resize(usz(nl));
    xl_src_.resize(usz(nl));
    xu_rowi_.resize(usz(nu));
    std::vector<std::array<index_t, 3>> upairs;  // (source snode, src, dst)
    upairs.reserve(usz(nu));
    std::vector<index_t> ufill(xu_colp_.begin(), xu_colp_.end() - 1);
    for (index_t r = 0, lp = 0; r < n_; ++r) {
        for (const index_t i : lcols[usz(r)]) {
            // L entry (i, r), pivot-space row index (the solves and the
            // refactor replay run in pivot space).
            xl_rowi_[usz(lp)] = i;
            xl_src_[usz(lp)] = lpan_pos(i, r);
            ++lp;
            // Symmetric U entry (r, i) in export column i; its panel
            // source lives in r's supernode (diag block or U row block).
            const index_t up = ufill[usz(i)]++;
            xu_rowi_[usz(up)] = r;
            upairs.push_back({col_to_snode_[usz(r)], upan_pos(r, i), up});
        }
    }
    // Group the U export by source supernode so it runs right after that
    // supernode's elimination step, on a cache-hot panel.
    std::sort(upairs.begin(), upairs.end());
    xu_ptr_.assign(usz(nsup) + 1, 0);
    xu_srcs_.resize(usz(nu));
    xu_dsts_.resize(usz(nu));
    for (index_t i = 0; i < nu; ++i) {
        ++xu_ptr_[usz(upairs[usz(i)][0]) + 1];
        xu_srcs_[usz(i)] = upairs[usz(i)][1];
        xu_dsts_[usz(i)] = upairs[usz(i)][2];
    }
    for (index_t t = 0; t < nsup; ++t) xu_ptr_[usz(t) + 1] += xu_ptr_[usz(t)];
    xdiag_src_.resize(usz(n_));
    for (index_t j = 0; j < n_; ++j) xdiag_src_[usz(j)] = lpan_pos(j, j);
}

SparseLu::SparseLu(const CscMatrix& a, SparseLuOptions opt)
    : SparseLu(a, std::make_shared<const SparseLuSymbolic>(a, opt)) {}

SparseLu::SparseLu(const CscMatrix& a, std::shared_ptr<const SparseLuSymbolic> symbolic)
    : n_(a.rows()), symbolic_(std::move(symbolic)) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "SparseLu: square matrix required");
    OPMSIM_REQUIRE(symbolic_ != nullptr, "SparseLu: null symbolic analysis");
    OPMSIM_REQUIRE(symbolic_->size() == n_,
                   "SparseLu: symbolic analysis size mismatch");
    OPMSIM_REQUIRE(a.col_ptr() == symbolic_->pattern_colp() &&
                       a.row_ind() == symbolic_->pattern_rowi(),
                   "SparseLu: matrix pattern differs from the analyzed one");
    factorize(a);
}

namespace {

/// ||A||_1 (max column abs sum) and max|A| of a CSC matrix, captured at
/// factorization time for the rcond / pivot-growth monitors.
void input_norms(const CscMatrix& a, double& anorm1, double& maxabs) {
    anorm1 = 0.0;
    maxabs = 0.0;
    const auto& colp = a.col_ptr();
    const auto& val = a.values();
    for (index_t j = 0; j < a.cols(); ++j) {
        double colsum = 0.0;
        for (index_t p = colp[usz(j)]; p < colp[usz(j) + 1]; ++p) {
            const double v = std::abs(val[usz(p)]);
            colsum += v;
            if (v > maxabs) maxabs = v;
        }
        if (colsum > anorm1) anorm1 = colsum;
    }
}

} // namespace

void SparseLu::factorize(const CscMatrix& a) {
    using Kernel = SparseLuOptions::Kernel;
    input_norms(a, anorm1_, maxabs_a_);
    const Kernel want = symbolic_->options().kernel;
    const bool try_supernodal =
        symbolic_->has_supernodes() &&
        (want == Kernel::supernodal || (want == Kernel::automatic && n_ >= 32));
    if (try_supernodal) {
        try {
            factorize_supernodal(a);
            kernel_ = Kernel::supernodal;
            if (fault::enabled() && !u_diag_.empty())
                u_diag_[0] = fault::perturb(fault::Site::factor_values, u_diag_[0]);
            return;
        } catch (const numerical_error&) {
            if (want == Kernel::supernodal) throw;
            // automatic: a diagonal pivot failed the threshold test —
            // release the panels and fall back to the scalar kernel, which
            // can pivot off the diagonal.
            lpan_.clear();
            upan_.clear();
        }
    }
    factorize_scalar(a);
    kernel_ = Kernel::scalar;
    // Fault site: perturb one factor value after a successful
    // factorization (exercises the refinement / cache-invalidation arms
    // of the degradation ladder).
    if (fault::enabled() && !u_diag_.empty())
        u_diag_[0] = fault::perturb(fault::Site::factor_values, u_diag_[0]);
}

// ---------------------------------------------------------------------------
// Scalar (Gilbert–Peierls) kernel — the reference path.
// ---------------------------------------------------------------------------

void SparseLu::factorize_scalar(const CscMatrix& a) {
    const index_t n = n_;
    const double pivot_tol = symbolic_->options().pivot_tol;
    const std::vector<index_t>& perm_cols = symbolic_->perm_cols();

    pinv_.assign(usz(n), -1);
    perm_rows_.assign(usz(n), -1);
    l_colp_.assign(1, 0);
    u_colp_.assign(1, 0);
    // Clear any state a failed supernodal attempt left behind (the
    // automatic-kernel fallback path) — the loops below append.
    l_rowi_.clear();
    l_val_.clear();
    u_rowi_.clear();
    u_val_.clear();
    u_diag_.assign(usz(n), 0.0);
    offdiag_pivots_ = 0;

    // The symmetric fill estimate sizes the factors up front: half below
    // the diagonal (L), half above (U), exact when pivots stay diagonal.
    const index_t est_offdiag =
        std::max<index_t>(0, (symbolic_->fill_estimate() - n) / 2);
    l_rowi_.reserve(usz(est_offdiag));
    l_val_.reserve(usz(est_offdiag));
    u_rowi_.reserve(usz(est_offdiag));
    u_val_.reserve(usz(est_offdiag));

    Vectord x(usz(n), 0.0);
    ReachDfs dfs(n);
    const auto& acp = a.col_ptr();
    const auto& ari = a.row_ind();
    const auto& avl = a.values();

    for (index_t j = 0; j < n; ++j) {
        const index_t aj = perm_cols[usz(j)];

        // --- symbolic: reach of column aj's pattern through L's DAG.
        dfs.begin(static_cast<int>(j));
        for (index_t p = acp[usz(aj)]; p < acp[usz(aj) + 1]; ++p)
            dfs.dfs_from(ari[usz(p)], l_colp_, l_rowi_, pinv_);
        const std::vector<index_t> pattern = dfs.take_topo();

        // --- numeric: scatter b, then eliminate in topological order.
        for (index_t p = acp[usz(aj)]; p < acp[usz(aj) + 1]; ++p)
            x[usz(ari[usz(p)])] = avl[usz(p)];

        for (const index_t r : pattern) {
            const index_t k = pinv_[usz(r)];
            if (k < 0) continue;  // unpivoted row: below the diagonal, no outedges
            const double xr = x[usz(r)];
            if (xr == 0.0) continue;
            for (index_t p = l_colp_[usz(k)]; p < l_colp_[usz(k) + 1]; ++p)
                x[usz(l_rowi_[usz(p)])] -= l_val_[usz(p)] * xr;
        }

        // --- pivot: among unpivoted rows, prefer the structural diagonal
        // (original row aj) when it passes the threshold test.
        double cmax = 0.0;
        index_t rpiv = -1;
        for (const index_t r : pattern) {
            if (pinv_[usz(r)] >= 0) continue;
            const double v = std::abs(x[usz(r)]);
            if (v > cmax) {
                cmax = v;
                rpiv = r;
            }
        }
        if (rpiv < 0 || cmax == 0.0)
            throw solver_error(
                ErrorCode::singular_pencil,
                "SparseLu: matrix is singular at factor column " + std::to_string(j) +
                    " (original column " + std::to_string(aj) +
                    "): no nonzero pivot candidate (column max = 0)");
        if (fault::enabled() && fault::fire(fault::Site::scalar_pivot))
            throw solver_error(
                ErrorCode::pivot_breakdown,
                "SparseLu: pivot rejected at factor column " + std::to_string(j) +
                    " (fault injection)");
        const double xdiag = (pinv_[usz(aj)] < 0) ? std::abs(x[usz(aj)]) : 0.0;
        if (xdiag >= pivot_tol * cmax && xdiag > 0.0) {
            rpiv = aj;
        } else if (rpiv != aj) {
            ++offdiag_pivots_;
        }
        const double pivot = x[usz(rpiv)];
        pinv_[usz(rpiv)] = j;
        perm_rows_[usz(j)] = rpiv;
        u_diag_[usz(j)] = pivot;

        // --- gather into U (pivoted rows) and L (unpivoted rows / pivot).
        // Every reach entry is kept, zero-valued or not: the stored pattern
        // must stay value-independent so refactor() can replay it exactly.
        for (const index_t r : pattern) {
            const double v = x[usz(r)];
            x[usz(r)] = 0.0;  // reset scratch
            const index_t k = pinv_[usz(r)];
            if (r == rpiv) continue;
            if (k >= 0 && k < j) {
                u_rowi_.push_back(k);
                u_val_.push_back(v);
            } else {
                l_rowi_.push_back(r);
                l_val_.push_back(v / pivot);
            }
        }
        u_colp_.push_back(static_cast<index_t>(u_val_.size()));
        l_colp_.push_back(static_cast<index_t>(l_val_.size()));
    }

    // Remap L's row indices into pivot space (every row is pivoted by
    // now): the solves and refactor run entirely in pivot space, where
    // the scatter targets are etree-clustered — much friendlier to the
    // cache than original row indices, and the arithmetic is unchanged.
    for (std::size_t p = 0; p < l_rowi_.size(); ++p)
        l_rowi_[p] = pinv_[usz(l_rowi_[p])];

    nnz_l_ = static_cast<index_t>(l_val_.size());
    nnz_u_ = static_cast<index_t>(u_val_.size() + u_diag_.size());
}

void SparseLu::refactor_scalar(const CscMatrix& a) {
    const index_t n = n_;
    const std::vector<index_t>& perm_cols = symbolic_->perm_cols();
    const std::vector<index_t>& a_colp = a.col_ptr();
    const std::vector<index_t>& a_rowi = a.row_ind();
    const auto& avl = a.values();
    // Pivot-space scratch (l_rowi_ holds pivot positions after the
    // factorization's remap); A's rows are resolved through pinv_.
    Vectord& x = thread_scratch(usz(n));
    std::fill(x.begin(), x.begin() + n, 0.0);

    for (index_t j = 0; j < n; ++j) {
        const index_t aj = perm_cols[usz(j)];
        for (index_t p = a_colp[usz(aj)]; p < a_colp[usz(aj) + 1]; ++p)
            x[usz(pinv_[usz(a_rowi[usz(p)])])] = avl[usz(p)];

        // Replay the frozen U pattern in its stored elimination order.
        for (index_t p = u_colp_[usz(j)]; p < u_colp_[usz(j) + 1]; ++p) {
            const index_t k = u_rowi_[usz(p)];
            const double xr = x[usz(k)];
            x[usz(k)] = 0.0;
            u_val_[usz(p)] = xr;
            if (xr == 0.0) continue;
            for (index_t q = l_colp_[usz(k)]; q < l_colp_[usz(k) + 1]; ++q)
                x[usz(l_rowi_[usz(q)])] -= l_val_[usz(q)] * xr;
        }

        const double pivot = x[usz(j)];
        x[usz(j)] = 0.0;
        if (pivot == 0.0 ||
            (fault::enabled() && fault::fire(fault::Site::refactor_pivot)))
            throw solver_error(
                ErrorCode::pivot_breakdown,
                "SparseLu::refactor: frozen pivot vanished at column " +
                    std::to_string(j) + " (|pivot| = " + std::to_string(std::abs(pivot)) +
                    "); a full factorization is required");
        u_diag_[usz(j)] = pivot;

        for (index_t q = l_colp_[usz(j)]; q < l_colp_[usz(j) + 1]; ++q) {
            const index_t r = l_rowi_[usz(q)];
            l_val_[usz(q)] = x[usz(r)] / pivot;
            x[usz(r)] = 0.0;
        }
    }
}

// ---------------------------------------------------------------------------
// Supernodal BLAS-3 kernel.
// ---------------------------------------------------------------------------

void SparseLu::factorize_supernodal(const CscMatrix& a) {
    const SparseLuSymbolic& sym = *symbolic_;
    // Diagonal pivoting: the row order IS the column order.
    perm_rows_ = sym.perm_cols();
    pinv_.resize(usz(n_));
    for (index_t k = 0; k < n_; ++k) pinv_[usz(perm_rows_[usz(k)])] = k;
    offdiag_pivots_ = 0;

    // Compact column values for the streaming solves (the exact
    // structural pattern, shared from the symbolic — no panel padding);
    // gathered per supernode inside the elimination loop while each
    // panel is cache-hot, here and on every refactor.
    l_val_.resize(sym.export_l_rowi().size());
    u_val_.resize(sym.export_u_rowi().size());
    u_diag_.resize(usz(n_));

    assemble_and_factor_supernodal(a);

    nnz_l_ = static_cast<index_t>(l_val_.size());
    nnz_u_ = static_cast<index_t>(u_val_.size() + u_diag_.size());
}

void SparseLu::assemble_and_factor_supernodal(const CscMatrix& a) {
    const SparseLuSymbolic& sym = *symbolic_;
    const index_t nsup = sym.num_supernodes();
    const std::vector<index_t>& sp = sym.snode_ptr();
    const std::vector<index_t>& rp = sym.srow_ptr();
    const std::vector<index_t>& sr = sym.srow();
    const std::vector<index_t>& c2s = sym.col_to_snode();
    const std::vector<index_t>& lpo = sym.lpan_off();
    const std::vector<index_t>& upo = sym.upan_off();
    const double pivot_tol = sym.options().pivot_tol;

    lpan_.resize(usz(lpo[usz(nsup)]));
    upan_.resize(usz(upo[usz(nsup)]));
    const auto& avl = a.values();
    const std::vector<index_t>& asm_ptr = sym.asm_ptr();
    const std::vector<index_t>& asm_src = sym.asm_src();
    const std::vector<index_t>& asm_dst = sym.asm_dst();
    const std::vector<index_t>& xl_src = sym.export_l_src();
    const std::vector<index_t>& xu_ptr = sym.export_u_ptr();
    const std::vector<index_t>& xu_srcs = sym.export_u_srcs();
    const std::vector<index_t>& xu_dsts = sym.export_u_dsts();
    const std::vector<index_t>& xdiag = sym.export_diag_src();
    index_t lcur = 0;  // moving cursor into the (source-ascending) L export

    // ---- left-looking supernodal elimination.  head/link thread the
    // classic updater lists: supernode s sits on the list of the target
    // whose column range contains s's next unconsumed below-panel row.
    std::vector<index_t> head(usz(nsup), -1), link(usz(nsup), -1),
        spos(usz(nsup), 0);
    std::vector<index_t> relmap(usz(n_));
    Vectord scr;

    for (index_t t = 0; t < nsup; ++t) {
        const index_t c0 = sp[usz(t)], c1 = sp[usz(t) + 1];
        const index_t w = c1 - c0;
        const index_t nbt = rp[usz(t) + 1] - rp[usz(t)];
        const index_t ht = w + nbt;
        const index_t* rows_t = sr.data() + rp[usz(t)];
        double* wpan = lpan_.data() + lpo[usz(t)];
        double* ut = upan_.data() + upo[usz(t)];

        for (index_t i = 0; i < w; ++i) relmap[usz(c0 + i)] = i;
        for (index_t k = 0; k < nbt; ++k) relmap[usz(rows_t[usz(k)])] = w + k;

        // Zero + assemble this supernode's panels (grouped A schedule) —
        // everything from here to the export below touches the panel
        // while it is cache-hot.
        std::fill(wpan, wpan + ht * w, 0.0);
        std::fill(ut, ut + w * nbt, 0.0);
        {
            double* __restrict lp = lpan_.data();
            double* __restrict up = upan_.data();
            for (index_t k = asm_ptr[usz(t)]; k < asm_ptr[usz(t) + 1]; ++k) {
                const index_t d = asm_dst[usz(k)];
                const double v = avl[usz(asm_src[usz(k)])];
                if (d >= 0)
                    lp[usz(d)] = v;
                else
                    up[usz(~d)] = v;
            }
        }

        index_t s = head[usz(t)];
        head[usz(t)] = -1;
        while (s >= 0) {
            const index_t s_next = link[usz(s)];
            const index_t ws = sp[usz(s) + 1] - sp[usz(s)];
            const index_t nbs = rp[usz(s) + 1] - rp[usz(s)];
            const index_t hs = ws + nbs;
            const index_t* rows_s = sr.data() + rp[usz(s)];
            const index_t p = spos[usz(s)];
            index_t q = p;
            while (q < nbs && rows_s[usz(q)] < c1) ++q;

            // M1 = L_s(suffix rows, :) * U_s(:, rows-in-[c0,c1)): lands in
            // the target's L/diagonal panel.  M2 = L_s(rows-in-[c0,c1), :)
            // * U_s(:, rows beyond): lands in the target's U row block.
            // Narrow sources (the common case on circuit pencils) fuse the
            // multiply into the scatter — the k-accumulation runs in
            // registers and the intermediate block round-trip disappears;
            // wide sources go through panel_mult + a scatter pass.
            const index_t nr = nbs - p, ncj = q - p;
            const double* lsub = lpan_.data() + lpo[usz(s)] + (ws + p);
            const double* usrc = upan_.data() + upo[usz(s)];
            if (ncj > 0 && ws <= 8) {
                for (index_t cj = 0; cj < ncj; ++cj) {
                    double* __restrict tcol =
                        wpan + (rows_s[usz(p + cj)] - c0) * ht;
                    const double* __restrict u = usrc + (p + cj) * ws;
                    for (index_t ri = 0; ri < nr; ++ri) {
                        double acc = lsub[ri] * u[0];
                        for (index_t k = 1; k < ws; ++k)
                            acc += lsub[ri + k * hs] * u[k];
                        tcol[relmap[usz(rows_s[usz(p + ri)])]] -= acc;
                    }
                }
                const index_t ncb = nbs - q;
                for (index_t cb = 0; cb < ncb; ++cb) {
                    double* __restrict ucol =
                        ut + (relmap[usz(rows_s[usz(q + cb)])] - w) * w;
                    const double* __restrict u = usrc + (q + cb) * ws;
                    for (index_t ri = 0; ri < ncj; ++ri) {
                        double acc = lsub[ri] * u[0];
                        for (index_t k = 1; k < ws; ++k)
                            acc += lsub[ri + k * hs] * u[k];
                        ucol[rows_s[usz(p + ri)] - c0] -= acc;
                    }
                }
            } else if (ncj > 0) {
                if (scr.size() < usz(nr * ncj)) scr.resize(usz(nr * ncj));
                panel_mult(nr, ncj, ws, lsub, hs, usrc + p * ws, ws,
                           scr.data());
                for (index_t cj = 0; cj < ncj; ++cj) {
                    double* tcol = wpan + (rows_s[usz(p + cj)] - c0) * ht;
                    const double* mcol = scr.data() + cj * nr;
                    for (index_t ri = 0; ri < nr; ++ri)
                        tcol[relmap[usz(rows_s[usz(p + ri)])]] -= mcol[ri];
                }
                const index_t ncb = nbs - q;
                if (ncb > 0) {
                    if (scr.size() < usz(ncj * ncb)) scr.resize(usz(ncj * ncb));
                    panel_mult(ncj, ncb, ws, lsub, hs, usrc + q * ws, ws,
                               scr.data());
                    for (index_t cb = 0; cb < ncb; ++cb) {
                        double* ucol =
                            ut + (relmap[usz(rows_s[usz(q + cb)])] - w) * w;
                        const double* mcol = scr.data() + cb * ncj;
                        for (index_t ri = 0; ri < ncj; ++ri)
                            ucol[rows_s[usz(p + ri)] - c0] -= mcol[ri];
                    }
                }
            }

            spos[usz(s)] = q;
            if (q < nbs) {
                const index_t t2 = c2s[usz(rows_s[usz(q)])];
                link[usz(s)] = head[usz(t2)];
                head[usz(t2)] = s;
            }
            s = s_next;
        }

        // ---- dense right-looking factorization of the panel, diagonal
        // pivots with the same threshold test as the scalar kernel.
        for (index_t j = 0; j < w; ++j) {
            double* wj = wpan + j * ht;
            double cmax = 0.0;
            for (index_t i = j; i < ht; ++i) cmax = std::max(cmax, std::abs(wj[i]));
            const double pivot = wj[j];
            if (pivot == 0.0 || std::abs(pivot) < pivot_tol * cmax ||
                (fault::enabled() && fault::fire(fault::Site::supernodal_pivot)))
                throw solver_error(
                    ErrorCode::pivot_breakdown,
                    "SparseLu: supernodal diagonal pivot rejected at column " +
                        std::to_string(c0 + j) + ": |pivot| = " +
                        std::to_string(std::abs(pivot)) + " < threshold " +
                        std::to_string(pivot_tol * cmax) + " (pivot_tol = " +
                        std::to_string(pivot_tol) + ")");
            const double inv_piv = 1.0 / pivot;
            for (index_t i = j + 1; i < ht; ++i) wj[i] *= inv_piv;
            for (index_t c = j + 1; c < w; ++c) {
                double* wc = wpan + c * ht;
                const double f = wc[j];
                if (f == 0.0) continue;
                for (index_t i = j + 1; i < ht; ++i) wc[i] -= wj[i] * f;
            }
        }

        // U row block: U(J, beyond) = Ldiag^{-1} * (assembled - updates).
        solve_unit_lower_panel(wpan, ht, w, ut, w, nbt);

        // Export this supernode's values into the compact column storage
        // (sources final from here on, panel still hot).
        {
            const double* __restrict lp = lpan_.data();
            const double* __restrict up = upan_.data();
            const index_t lend = lpo[usz(t) + 1];
            while (lcur < static_cast<index_t>(xl_src.size()) &&
                   xl_src[usz(lcur)] < lend) {
                l_val_[usz(lcur)] = lp[usz(xl_src[usz(lcur)])];
                ++lcur;
            }
            for (index_t k = xu_ptr[usz(t)]; k < xu_ptr[usz(t) + 1]; ++k) {
                const index_t d = xu_srcs[usz(k)];
                u_val_[usz(xu_dsts[usz(k)])] = d >= 0 ? lp[usz(d)] : up[usz(~d)];
            }
            for (index_t j = c0; j < c1; ++j)
                u_diag_[usz(j)] = lp[usz(xdiag[usz(j)])];
        }

        if (nbt > 0) {
            spos[usz(t)] = 0;
            const index_t t2 = c2s[usz(rows_t[0])];
            link[usz(t)] = head[usz(t2)];
            head[usz(t2)] = t;
        }
    }
}

// ---------------------------------------------------------------------------
// Shared entry points.
// ---------------------------------------------------------------------------

void SparseLu::refactor(const CscMatrix& a) {
    OPMSIM_REQUIRE(a.rows() == n_ && a.cols() == n_,
                   "SparseLu::refactor: size mismatch");
    OPMSIM_REQUIRE(a.col_ptr() == symbolic_->pattern_colp() &&
                       a.row_ind() == symbolic_->pattern_rowi(),
                   "SparseLu::refactor: sparsity pattern differs from the "
                   "factored matrix (build a new SparseLu instead)");
    input_norms(a, anorm1_, maxabs_a_);
    if (kernel_ == SparseLuOptions::Kernel::supernodal)
        assemble_and_factor_supernodal(a);  // exports per supernode inline
    else
        refactor_scalar(a);
}

void SparseLu::solve_in_place(double* b, index_t nrhs, index_t ldb) const {
    OPMSIM_REQUIRE(nrhs >= 0 && ldb >= n_,
                   "SparseLu::solve: bad RHS block shape");
    if (nrhs == 0) return;
    const bool super = kernel_ == SparseLuOptions::Kernel::supernodal;
    const std::vector<index_t>& l_colp = super ? symbolic_->export_l_colp() : l_colp_;
    const std::vector<index_t>& l_rowi = super ? symbolic_->export_l_rowi() : l_rowi_;
    const std::vector<index_t>& u_colp = super ? symbolic_->export_u_colp() : u_colp_;
    const std::vector<index_t>& u_rowi = super ? symbolic_->export_u_rowi() : u_rowi_;
    const index_t n = n_;
    Vectord& buf = thread_scratch(usz(n * nrhs));
    double* y = buf.data();
    // Gather the RHS into pivot space: y_k = b[perm_rows[k]].
    for (index_t r = 0; r < nrhs; ++r)
        for (index_t k = 0; k < n; ++k)
            y[usz(r * n + k)] = b[usz(r * ldb + perm_rows_[usz(k)])];

    // Forward solve L z = P b in pivot space (l_rowi_ holds pivot
    // positions; scatter targets are etree-clustered).  The RHS loop
    // sits INSIDE the column loop, so each factor column's entries are
    // streamed once per call and stay cache-hot across all RHS columns;
    // per RHS column the operation order is exactly the single-RHS
    // order, so batching never changes a bit.
    for (index_t k = 0; k < n; ++k) {
        const index_t p0 = l_colp[usz(k)], p1 = l_colp[usz(k) + 1];
        for (index_t r = 0; r < nrhs; ++r) {
            double* __restrict yr = y + r * n;
            const double zk = yr[usz(k)];
            if (zk == 0.0) continue;
            for (index_t p = p0; p < p1; ++p)
                yr[usz(l_rowi[usz(p)])] -= l_val_[usz(p)] * zk;
        }
    }

    // Backward solve U w = z, still in pivot space.
    for (index_t j = n - 1; j >= 0; --j) {
        const double dj = u_diag_[usz(j)];
        const index_t p0 = u_colp[usz(j)], p1 = u_colp[usz(j) + 1];
        for (index_t r = 0; r < nrhs; ++r) {
            double* __restrict yr = y + r * n;
            const double wj = yr[usz(j)] / dj;
            yr[usz(j)] = wj;
            if (wj == 0.0) continue;
            for (index_t p = p0; p < p1; ++p)
                yr[usz(u_rowi[usz(p)])] -= u_val_[usz(p)] * wj;
        }
    }

    // Undo the column permutation: x[perm_cols[j]] = w_j.
    for (index_t r = 0; r < nrhs; ++r)
        for (index_t j = 0; j < n; ++j)
            b[usz(r * ldb + symbolic_->perm_cols()[usz(j)])] = y[usz(r * n + j)];
}

void SparseLu::solve_in_place(Vectord& b) const {
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n_, "SparseLu::solve: size mismatch");
    solve_in_place(b.data(), 1, n_);
}

Vectord SparseLu::solve(Vectord b) const {
    solve_in_place(b);
    return b;
}

Matrixd SparseLu::solve_multi(Matrixd b) const {
    OPMSIM_REQUIRE(b.rows() == n_, "SparseLu::solve_multi: RHS row count mismatch");
    solve_in_place(b.data(), b.cols(), b.rows());
    return b;
}

void SparseLu::solve_transpose_in_place(Vectord& b) const {
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n_,
                   "SparseLu::solve_transpose: size mismatch");
    // A(perm_rows, perm_cols) = L U, so A^T x = b becomes
    // U^T v = b(perm_cols), L^T w = v, x(perm_rows) = w — both triangular
    // passes are gathers (dot products) against the stored columns, the
    // mirror image of the forward solve's scatters.
    const bool super = kernel_ == SparseLuOptions::Kernel::supernodal;
    const std::vector<index_t>& l_colp = super ? symbolic_->export_l_colp() : l_colp_;
    const std::vector<index_t>& l_rowi = super ? symbolic_->export_l_rowi() : l_rowi_;
    const std::vector<index_t>& u_colp = super ? symbolic_->export_u_colp() : u_colp_;
    const std::vector<index_t>& u_rowi = super ? symbolic_->export_u_rowi() : u_rowi_;
    const index_t n = n_;
    const std::vector<index_t>& perm_cols = symbolic_->perm_cols();
    Vectord& buf = thread_scratch(usz(n));
    double* y = buf.data();
    for (index_t j = 0; j < n; ++j) y[usz(j)] = b[usz(perm_cols[usz(j)])];

    // Forward through U^T (lower triangular with u_diag_ diagonal).
    for (index_t j = 0; j < n; ++j) {
        double s = y[usz(j)];
        for (index_t p = u_colp[usz(j)]; p < u_colp[usz(j) + 1]; ++p)
            s -= u_val_[usz(p)] * y[usz(u_rowi[usz(p)])];
        y[usz(j)] = s / u_diag_[usz(j)];
    }
    // Backward through L^T (unit upper triangular).
    for (index_t k = n - 1; k >= 0; --k) {
        double s = y[usz(k)];
        for (index_t p = l_colp[usz(k)]; p < l_colp[usz(k) + 1]; ++p)
            s -= l_val_[usz(p)] * y[usz(l_rowi[usz(p)])];
        y[usz(k)] = s;
    }
    for (index_t k = 0; k < n; ++k) b[usz(perm_rows_[usz(k)])] = y[usz(k)];
}

double SparseLu::rcond_estimate() const {
    if (n_ == 0 || anorm1_ == 0.0) return 0.0;
    const index_t n = n_;
    // Hager's method: walk toward a maximizing vector for ||A^-1||_1 by
    // alternating A^-1 and A^-T applications to sign vectors.  Local
    // buffers — solve_in_place owns the thread-local scratch.
    Vectord x(usz(n), 1.0 / static_cast<double>(n));
    double est = 0.0;
    index_t last = -1;
    for (int iter = 0; iter < 5; ++iter) {
        Vectord y = x;
        solve_in_place(y);
        double ynorm = 0.0;
        for (const double v : y) ynorm += std::abs(v);
        est = ynorm;
        Vectord z(usz(n));
        for (index_t i = 0; i < n; ++i)
            z[usz(i)] = y[usz(i)] >= 0.0 ? 1.0 : -1.0;
        solve_transpose_in_place(z);
        index_t j = 0;
        double zmax = 0.0, ztx = 0.0;
        for (index_t i = 0; i < n; ++i) {
            const double a = std::abs(z[usz(i)]);
            ztx += z[usz(i)] * x[usz(i)];
            if (a > zmax) {
                zmax = a;
                j = i;
            }
        }
        if (zmax <= ztx || j == last) break;
        last = j;
        std::fill(x.begin(), x.end(), 0.0);
        x[usz(j)] = 1.0;
    }
    if (est == 0.0 || !std::isfinite(est)) return 0.0;
    return 1.0 / (anorm1_ * est);
}

double SparseLu::pivot_growth() const {
    if (maxabs_a_ == 0.0) return 0.0;
    double maxu = 0.0;
    for (const double v : u_val_) maxu = std::max(maxu, std::abs(v));
    for (const double v : u_diag_) maxu = std::max(maxu, std::abs(v));
    return maxu / maxabs_a_;
}

// ---------------------------------------------------------------------------
// Snapshot serialization (SolveCaches::save / load).  Every field in
// declaration order inside one length-prefixed block, so future fields can
// append without breaking old readers.

void SparseLuSymbolic::save(util::ByteWriter& w) const {
    const std::size_t block = w.begin_block();
    w.i64(n_);
    w.u8(static_cast<std::uint8_t>(opt_.ordering));
    w.u8(static_cast<std::uint8_t>(opt_.kernel));
    w.f64(opt_.pivot_tol);
    w.u8(static_cast<std::uint8_t>(chosen_));
    w.vec_int(perm_cols_);
    w.vec_int(a_colp_);
    w.vec_int(a_rowi_);
    w.f64(mean_degree_);
    w.i64(fill_estimate_);
    w.vec_int(etree_.parent);
    w.vec_int(etree_.col_count);
    w.vec_int(snode_ptr_);
    w.vec_int(srow_ptr_);
    w.vec_int(srow_);
    w.vec_int(col_to_snode_);
    w.vec_int(lpan_off_);
    w.vec_int(upan_off_);
    w.vec_int(asm_ptr_);
    w.vec_int(asm_src_);
    w.vec_int(asm_dst_);
    w.vec_int(xl_colp_);
    w.vec_int(xl_rowi_);
    w.vec_int(xu_colp_);
    w.vec_int(xu_rowi_);
    w.vec_int(xl_src_);
    w.vec_int(xu_ptr_);
    w.vec_int(xu_srcs_);
    w.vec_int(xu_dsts_);
    w.vec_int(xdiag_src_);
    w.i64(padding_);
    w.end_block(block);
}

namespace {
SparseLuOptions::Ordering decode_ordering(util::ByteReader& r) {
    const std::uint8_t v = r.u8();
    if (v > static_cast<std::uint8_t>(SparseLuOptions::Ordering::automatic))
        r.fail("invalid ordering enum value " + std::to_string(v));
    return static_cast<SparseLuOptions::Ordering>(v);
}
SparseLuOptions::Kernel decode_kernel(util::ByteReader& r) {
    const std::uint8_t v = r.u8();
    if (v > static_cast<std::uint8_t>(SparseLuOptions::Kernel::automatic))
        r.fail("invalid kernel enum value " + std::to_string(v));
    return static_cast<SparseLuOptions::Kernel>(v);
}
} // namespace

std::shared_ptr<const SparseLuSymbolic> SparseLuSymbolic::load(
    util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    auto sym = std::shared_ptr<SparseLuSymbolic>(new SparseLuSymbolic());
    sym->n_ = static_cast<index_t>(r.i64());
    sym->opt_.ordering = decode_ordering(r);
    sym->opt_.kernel = decode_kernel(r);
    sym->opt_.pivot_tol = r.f64();
    sym->chosen_ = decode_ordering(r);
    sym->perm_cols_ = r.vec_int<index_t>();
    sym->a_colp_ = r.vec_int<index_t>();
    sym->a_rowi_ = r.vec_int<index_t>();
    sym->mean_degree_ = r.f64();
    sym->fill_estimate_ = static_cast<index_t>(r.i64());
    sym->etree_.parent = r.vec_int<index_t>();
    sym->etree_.col_count = r.vec_int<index_t>();
    sym->snode_ptr_ = r.vec_int<index_t>();
    sym->srow_ptr_ = r.vec_int<index_t>();
    sym->srow_ = r.vec_int<index_t>();
    sym->col_to_snode_ = r.vec_int<index_t>();
    sym->lpan_off_ = r.vec_int<index_t>();
    sym->upan_off_ = r.vec_int<index_t>();
    sym->asm_ptr_ = r.vec_int<index_t>();
    sym->asm_src_ = r.vec_int<index_t>();
    sym->asm_dst_ = r.vec_int<index_t>();
    sym->xl_colp_ = r.vec_int<index_t>();
    sym->xl_rowi_ = r.vec_int<index_t>();
    sym->xu_colp_ = r.vec_int<index_t>();
    sym->xu_rowi_ = r.vec_int<index_t>();
    sym->xl_src_ = r.vec_int<index_t>();
    sym->xu_ptr_ = r.vec_int<index_t>();
    sym->xu_srcs_ = r.vec_int<index_t>();
    sym->xu_dsts_ = r.vec_int<index_t>();
    sym->xdiag_src_ = r.vec_int<index_t>();
    sym->padding_ = static_cast<index_t>(r.i64());

    // Structural sanity: the cheap invariants every analysis satisfies.
    const index_t n = sym->n_;
    if (n < 0) r.fail("negative dimension");
    if (static_cast<index_t>(sym->perm_cols_.size()) != n)
        r.fail("perm_cols size mismatch");
    if (static_cast<index_t>(sym->a_colp_.size()) != n + 1 && n > 0)
        r.fail("pattern col_ptr size mismatch");
    if (n > 0 &&
        sym->a_colp_.back() != static_cast<index_t>(sym->a_rowi_.size()))
        r.fail("pattern row index count mismatch");
    for (const index_t p : sym->perm_cols_)
        if (p < 0 || p >= n) r.fail("perm_cols entry out of range");
    return sym;
}

} // namespace opmsim::la
