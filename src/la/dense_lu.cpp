#include "la/dense_lu.hpp"

#include <cmath>

namespace opmsim::la {

template <class T>
DenseLu<T>::DenseLu(Matrix<T> a) : lu_(std::move(a)) {
    OPMSIM_REQUIRE(lu_.rows() == lu_.cols(), "DenseLu: matrix must be square");
    const index_t n = lu_.rows();
    piv_.resize(static_cast<std::size_t>(n));

    for (index_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below the diagonal.
        index_t p = k;
        double best = abs_val(lu_(k, k));
        for (index_t i = k + 1; i < n; ++i) {
            const double v = abs_val(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best == 0.0)
            throw numerical_error("DenseLu: singular matrix (zero pivot column at k=" +
                                  std::to_string(k) + ")");
        piv_[static_cast<std::size_t>(k)] = p;
        if (p != k) {
            sign_ = -sign_;
            for (index_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
        }
        const T pivot = lu_(k, k);
        for (index_t i = k + 1; i < n; ++i) {
            const T m = lu_(i, k) / pivot;
            lu_(i, k) = m;
            if (m == T{}) continue;
            for (index_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
        }
    }
}

template <class T>
void DenseLu<T>::solve_in_place(std::vector<T>& b) const {
    const index_t n = lu_.rows();
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n, "DenseLu::solve: size mismatch");
    // Apply permutation.
    for (index_t k = 0; k < n; ++k) {
        const index_t p = piv_[static_cast<std::size_t>(k)];
        if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
    }
    // Forward: L y = Pb (unit lower).
    for (index_t i = 1; i < n; ++i) {
        T s = b[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < i; ++j) s -= lu_(i, j) * b[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(i)] = s;
    }
    // Backward: U x = y.
    for (index_t i = n - 1; i >= 0; --i) {
        T s = b[static_cast<std::size_t>(i)];
        for (index_t j = i + 1; j < n; ++j) s -= lu_(i, j) * b[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(i)] = s / lu_(i, i);
    }
}

template <class T>
std::vector<T> DenseLu<T>::solve(std::vector<T> b) const {
    solve_in_place(b);
    return b;
}

template <class T>
Matrix<T> DenseLu<T>::solve(const Matrix<T>& b) const {
    const index_t n = lu_.rows();
    OPMSIM_REQUIRE(b.rows() == n, "DenseLu::solve: row count mismatch");
    Matrix<T> x = b;
    std::vector<T> col(static_cast<std::size_t>(n));
    for (index_t j = 0; j < b.cols(); ++j) {
        for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = x(i, j);
        solve_in_place(col);
        for (index_t i = 0; i < n; ++i) x(i, j) = col[static_cast<std::size_t>(i)];
    }
    return x;
}

template <class T>
T DenseLu<T>::det() const {
    T d = static_cast<T>(sign_);
    for (index_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
    return d;
}

template <class T>
Matrix<T> DenseLu<T>::inverse() const {
    return solve(Matrix<T>::identity(lu_.rows()));
}

template class DenseLu<double>;
template class DenseLu<cplx>;

} // namespace opmsim::la
