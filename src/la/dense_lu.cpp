#include "la/dense_lu.hpp"

#include <cmath>

#include "util/status.hpp"

namespace opmsim::la {

template <class T>
DenseLu<T>::DenseLu(Matrix<T> a) : lu_(std::move(a)) {
    OPMSIM_REQUIRE(lu_.rows() == lu_.cols(), "DenseLu: matrix must be square");
    const index_t n = lu_.rows();
    piv_.resize(static_cast<std::size_t>(n));

    // Input norms for the health monitors (rcond, pivot growth).
    for (index_t j = 0; j < n; ++j) {
        double colsum = 0.0;
        for (index_t i = 0; i < n; ++i) {
            const double v = abs_val(lu_(i, j));
            colsum += v;
            if (v > maxabs_a_) maxabs_a_ = v;
        }
        if (colsum > anorm1_) anorm1_ = colsum;
    }

    for (index_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below the diagonal.
        index_t p = k;
        double best = abs_val(lu_(k, k));
        for (index_t i = k + 1; i < n; ++i) {
            const double v = abs_val(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best == 0.0)
            throw solver_error(
                ErrorCode::singular_pencil,
                "DenseLu: singular matrix — pivot column " + std::to_string(k) +
                    " (best row " + std::to_string(p) +
                    ") has |pivot| = 0 against max|A| = " + std::to_string(maxabs_a_));
        piv_[static_cast<std::size_t>(k)] = p;
        if (p != k) {
            sign_ = -sign_;
            for (index_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
        }
        const T pivot = lu_(k, k);
        for (index_t i = k + 1; i < n; ++i) {
            const T m = lu_(i, k) / pivot;
            lu_(i, k) = m;
            if (m == T{}) continue;
            for (index_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
        }
    }
}

template <class T>
void DenseLu<T>::solve_in_place(std::vector<T>& b) const {
    const index_t n = lu_.rows();
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n, "DenseLu::solve: size mismatch");
    // Apply permutation.
    for (index_t k = 0; k < n; ++k) {
        const index_t p = piv_[static_cast<std::size_t>(k)];
        if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
    }
    // Forward: L y = Pb (unit lower).
    for (index_t i = 1; i < n; ++i) {
        T s = b[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < i; ++j) s -= lu_(i, j) * b[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(i)] = s;
    }
    // Backward: U x = y.
    for (index_t i = n - 1; i >= 0; --i) {
        T s = b[static_cast<std::size_t>(i)];
        for (index_t j = i + 1; j < n; ++j) s -= lu_(i, j) * b[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(i)] = s / lu_(i, i);
    }
}

template <class T>
void DenseLu<T>::solve_transpose_in_place(std::vector<T>& b) const {
    const index_t n = lu_.rows();
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n,
                   "DenseLu::solve_transpose: size mismatch");
    // A = P^T L U, so A^T x = b is U^T y = b, L^T z = y, x = P^T z.
    for (index_t i = 0; i < n; ++i) {
        T s = b[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < i; ++j) s -= lu_(j, i) * b[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(i)] = s / lu_(i, i);
    }
    for (index_t i = n - 1; i >= 0; --i) {
        T s = b[static_cast<std::size_t>(i)];
        for (index_t j = i + 1; j < n; ++j) s -= lu_(j, i) * b[static_cast<std::size_t>(j)];
        b[static_cast<std::size_t>(i)] = s;
    }
    // Undo the row permutation (apply the recorded swaps in reverse).
    for (index_t k = n - 1; k >= 0; --k) {
        const index_t p = piv_[static_cast<std::size_t>(k)];
        if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
    }
}

namespace {
inline double sign_of(double v, double) { return v >= 0.0 ? 1.0 : -1.0; }
inline cplx sign_of(cplx v, double mag) { return mag == 0.0 ? cplx{1.0, 0.0} : v / mag; }
inline double real_of(double v) { return v; }
inline double real_of(cplx v) { return v.real(); }
} // namespace

template <class T>
double DenseLu<T>::rcond_estimate() const {
    const index_t n = lu_.rows();
    if (n == 0 || anorm1_ == 0.0) return 0.0;
    // Hager's method: walk toward a maximizing vector for ||A^-1||_1 by
    // alternating A^-1 and A^-T solves on sign vectors.
    std::vector<T> x(static_cast<std::size_t>(n), T{1.0} / static_cast<double>(n));
    double est = 0.0;
    index_t last = -1;
    for (int iter = 0; iter < 5; ++iter) {
        std::vector<T> y = x;
        solve_in_place(y);
        double ynorm = 0.0;
        for (const T& v : y) ynorm += abs_val(v);
        est = ynorm;
        std::vector<T> xi(static_cast<std::size_t>(n));
        for (index_t i = 0; i < n; ++i) {
            const T& v = y[static_cast<std::size_t>(i)];
            xi[static_cast<std::size_t>(i)] = sign_of(v, abs_val(v));
        }
        solve_transpose_in_place(xi);
        index_t j = 0;
        double zmax = 0.0;
        double ztx = 0.0;
        for (index_t i = 0; i < n; ++i) {
            const double a = abs_val(xi[static_cast<std::size_t>(i)]);
            ztx += real_of(xi[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)]);
            if (a > zmax) {
                zmax = a;
                j = i;
            }
        }
        if (zmax <= ztx || j == last) break;
        last = j;
        std::fill(x.begin(), x.end(), T{});
        x[static_cast<std::size_t>(j)] = T{1.0};
    }
    if (est == 0.0) return 0.0;
    return 1.0 / (anorm1_ * est);
}

template <class T>
double DenseLu<T>::pivot_growth() const {
    if (maxabs_a_ == 0.0) return 0.0;
    const index_t n = lu_.rows();
    double maxu = 0.0;
    for (index_t i = 0; i < n; ++i)
        for (index_t j = i; j < n; ++j) {
            const double v = abs_val(lu_(i, j));
            if (v > maxu) maxu = v;
        }
    return maxu / maxabs_a_;
}

template <class T>
std::vector<T> DenseLu<T>::solve(std::vector<T> b) const {
    solve_in_place(b);
    return b;
}

template <class T>
Matrix<T> DenseLu<T>::solve(const Matrix<T>& b) const {
    const index_t n = lu_.rows();
    OPMSIM_REQUIRE(b.rows() == n, "DenseLu::solve: row count mismatch");
    Matrix<T> x = b;
    std::vector<T> col(static_cast<std::size_t>(n));
    for (index_t j = 0; j < b.cols(); ++j) {
        for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = x(i, j);
        solve_in_place(col);
        for (index_t i = 0; i < n; ++i) x(i, j) = col[static_cast<std::size_t>(i)];
    }
    return x;
}

template <class T>
T DenseLu<T>::det() const {
    T d = static_cast<T>(sign_);
    for (index_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
    return d;
}

template <class T>
Matrix<T> DenseLu<T>::inverse() const {
    return solve(Matrix<T>::identity(lu_.rows()));
}

template class DenseLu<double>;
template class DenseLu<cplx>;

} // namespace opmsim::la
