#pragma once
/// \file factor_cache.hpp
/// \brief Cross-run cache of sparse LU analyses and numeric factors.
///
/// Every solver path in opmsim factors a circuit pencil (aE - bA, or the
/// multi-term sum of scaled stamps).  Across repeated runs of the same
/// system — parameter sweeps, method comparisons, batched scenarios that
/// differ only in their sources — those pencils recur at two levels:
///
///  * the *pattern* is identical for every scalar combination of one
///    circuit's stamps (CscMatrix::add keeps structural zeros), so the
///    fill-reducing ordering and elimination-tree analysis
///    (SparseLuSymbolic) can be computed once per pattern;
///  * the *values* are identical whenever the method, order alpha and step
///    size repeat, so the whole numeric factorization can be reused.
///
/// FactorCache memoizes both layers, keyed by a fingerprint of the pencil
/// (pattern hash; pattern + value hash for numeric factors) with exact
/// verification against the stored entry, so a hash collision can never
/// return a wrong factor.  Lookups are value-based: callers simply build
/// their pencil as usual and ask the cache; a hit costs one hash + one
/// vector compare.
///
/// Lookups and insertions are serialized by an internal mutex (a
/// util::Mutex capability — every guarded field is GUARDED_BY it and the
/// clang -Wthread-safety CI job proves the discipline), so one cache may
/// be shared by the Engine's run_batch worker threads; the returned
/// SparseLu / SparseLuSymbolic objects are immutable and their solves use
/// thread-local scratch, so concurrent use of a shared factor is safe
/// too.  The statistics getters take the mutex and may be called while
/// workers are active.  Numeric entries are capped because
/// adaptive stepping can generate many distinct step sizes; when full,
/// the most recent insertion is replaced (not the oldest), so cyclic
/// replays longer than the cap still keep the resident entries hitting.
/// Symbolic entries are tiny and per-pattern, so they are not evicted.

#include <cstdint>
#include <memory>
#include <vector>

#include "la/sparse_lu.hpp"
#include "util/annotations.hpp"

namespace opmsim::util {
class ByteWriter;
class ByteReader;
} // namespace opmsim::util

namespace opmsim::la {

class FactorCache {
public:
    /// Maximum retained numeric factors (replace-newest eviction beyond
    /// this — see the class comment).
    explicit FactorCache(std::size_t max_factors = 16)
        : max_factors_(max_factors) {}

    FactorCache(const FactorCache&) = delete;
    FactorCache& operator=(const FactorCache&) = delete;

    /// Pattern-level analysis for `a`: returns the cached symbolic when one
    /// matches `a`'s sparsity pattern and `opt` (ordering + pivot_tol),
    /// otherwise computes, stores and returns a fresh one.  `fresh` (when
    /// non-null) reports whether an ordering was actually performed.
    std::shared_ptr<const SparseLuSymbolic> symbolic(const CscMatrix& a,
                                                     const SparseLuOptions& opt = {},
                                                     bool* fresh = nullptr);

    /// Numeric factor of `a`: returns the cached SparseLu when one matches
    /// `a` exactly (pattern and values), otherwise factors `a` (reusing a
    /// cached symbolic when the pattern is known) and stores the result.
    /// `symbolic_fresh` / `numeric_fresh` (when non-null) report whether an
    /// ordering / a numeric factorization was performed by this call.
    std::shared_ptr<const SparseLu> factor(const CscMatrix& a,
                                           const SparseLuOptions& opt = {},
                                           bool* symbolic_fresh = nullptr,
                                           bool* numeric_fresh = nullptr);

    [[nodiscard]] std::size_t num_symbolic() const {
        const util::MutexLock lock(mutex_);
        return sym_.size();
    }
    [[nodiscard]] std::size_t num_factors() const {
        const util::MutexLock lock(mutex_);
        return num_.size();
    }
    [[nodiscard]] long symbolic_hits() const {
        const util::MutexLock lock(mutex_);
        return sym_hits_;
    }
    [[nodiscard]] long symbolic_misses() const {
        const util::MutexLock lock(mutex_);
        return sym_misses_;
    }
    [[nodiscard]] long factor_hits() const {
        const util::MutexLock lock(mutex_);
        return num_hits_;
    }
    [[nodiscard]] long factor_misses() const {
        const util::MutexLock lock(mutex_);
        return num_misses_;
    }

    /// Drop every cached entry (shared_ptrs held by callers stay valid).
    void clear();

    /// Serialize the symbolic (pattern-analysis) entries — the layer worth
    /// shipping across restarts: a loaded analysis makes the next factor
    /// call report zero fill-reducing orderings.  Numeric factors are
    /// value-bound and cheap to rebuild on first use, so they are not
    /// snapshotted.
    void save_symbolic(util::ByteWriter& w);

    /// Restore entries saved by save_symbolic().  Each entry's stored
    /// pattern hash is recomputed from the loaded analysis and must match
    /// (fingerprint verification); a mismatch throws
    /// solver_error(ErrorCode::invalid_scenario).  Entries already present
    /// (same fingerprint + options) are left alone.
    void load_symbolic(util::ByteReader& r);

    /// Invalidate the numeric factors of one pencil (every entry whose
    /// pattern and values match `a`, across all options).  Called by the
    /// degradation ladder when a cached factor produced a non-finite
    /// solution: the stale factor must not be served again.  Returns the
    /// number of entries removed.  Symbolic entries stay — the pattern
    /// analysis is value-independent.
    std::size_t invalidate(const CscMatrix& a);

private:
    struct SymEntry {
        std::uint64_t pattern_hash = 0;
        SparseLuOptions opt;
        std::shared_ptr<const SparseLuSymbolic> sym;
    };
    struct NumEntry {
        std::uint64_t pattern_hash = 0;
        std::uint64_t value_hash = 0;
        SparseLuOptions opt;
        std::vector<double> values;  ///< exact-match guard against collisions
        std::shared_ptr<const SparseLu> lu;
    };

    SymEntry* find_symbolic(const CscMatrix& a, std::uint64_t ph,
                            const SparseLuOptions& opt) REQUIRES(mutex_);
    std::shared_ptr<const SparseLu> find_numeric(const CscMatrix& a,
                                                 std::uint64_t ph,
                                                 std::uint64_t vh,
                                                 const SparseLuOptions& opt)
        REQUIRES(mutex_);
    std::shared_ptr<const SparseLuSymbolic> symbolic_locked(
        const CscMatrix& a, const SparseLuOptions& opt, bool* fresh)
        REQUIRES(mutex_);

    /// mutable: the stats getters are const but must lock — an
    /// unsynchronized size()/hits() read racing an insert is UB, and the
    /// svc daemon polls these while the dispatcher is live.
    mutable util::Mutex mutex_;
    std::size_t max_factors_;
    std::vector<SymEntry> sym_ GUARDED_BY(mutex_);
    /// insertion order; back() is replaced when full
    std::vector<NumEntry> num_ GUARDED_BY(mutex_);
    long sym_hits_ GUARDED_BY(mutex_) = 0;
    long sym_misses_ GUARDED_BY(mutex_) = 0;
    long num_hits_ GUARDED_BY(mutex_) = 0;
    long num_misses_ GUARDED_BY(mutex_) = 0;
};

} // namespace opmsim::la
