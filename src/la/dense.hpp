#pragma once
/// \file dense.hpp
/// \brief Dense column-major matrices and vector kernels.
///
/// opmsim has no external math dependencies, so this header provides the
/// dense substrate used throughout the library: a column-major Matrix<T>
/// (T = double or std::complex<double>), std::vector-based vectors, and the
/// level-1/2/3 kernels the solvers need.  Column-major layout is chosen
/// because the OPM solvers operate on the coefficient matrix X one column
/// at a time (paper, Section III-A).

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/check.hpp"

namespace opmsim::la {

using index_t = std::ptrdiff_t;
using cplx = std::complex<double>;

/// Magnitude helper that works for both real and complex scalars.
inline double abs_val(double x) { return std::abs(x); }
inline double abs_val(const cplx& x) { return std::abs(x); }

/// Dense column-major matrix of scalars T.
///
/// Invariants: storage size == rows()*cols(); rows(), cols() >= 0.
template <class T>
class Matrix {
public:
    /// Empty 0x0 matrix.
    Matrix() = default;

    /// r-by-c matrix, zero-initialized.
    Matrix(index_t r, index_t c) : rows_(r), cols_(c), d_(check_size(r, c)) {}

    /// Build from a row-major nested initializer list (test convenience):
    /// Matrix<double>{{1,2},{3,4}}.
    Matrix(std::initializer_list<std::initializer_list<T>> rows) {
        rows_ = static_cast<index_t>(rows.size());
        cols_ = rows_ > 0 ? static_cast<index_t>(rows.begin()->size()) : 0;
        d_.assign(static_cast<std::size_t>(rows_ * cols_), T{});
        index_t i = 0;
        for (const auto& row : rows) {
            OPMSIM_REQUIRE(static_cast<index_t>(row.size()) == cols_,
                           "ragged initializer list");
            index_t j = 0;
            for (const T& v : row) (*this)(i, j++) = v;
            ++i;
        }
    }

    /// n-by-n identity.
    static Matrix identity(index_t n) {
        Matrix m(n, n);
        for (index_t i = 0; i < n; ++i) m(i, i) = T{1};
        return m;
    }

    /// r-by-c zero matrix (alias of the sizing constructor, reads better).
    static Matrix zeros(index_t r, index_t c) { return Matrix(r, c); }

    [[nodiscard]] index_t rows() const { return rows_; }
    [[nodiscard]] index_t cols() const { return cols_; }
    [[nodiscard]] bool empty() const { return d_.empty(); }

    /// Unchecked element access (column-major).
    T& operator()(index_t i, index_t j) {
        return d_[static_cast<std::size_t>(j * rows_ + i)];
    }
    const T& operator()(index_t i, index_t j) const {
        return d_[static_cast<std::size_t>(j * rows_ + i)];
    }

    /// Raw pointer to the first element of column j.
    T* col(index_t j) { return d_.data() + j * rows_; }
    const T* col(index_t j) const { return d_.data() + j * rows_; }

    T* data() { return d_.data(); }
    const T* data() const { return d_.data(); }

    /// Element-wise operations.
    Matrix& operator+=(const Matrix& o) {
        require_same_shape(o);
        for (std::size_t k = 0; k < d_.size(); ++k) d_[k] += o.d_[k];
        return *this;
    }
    Matrix& operator-=(const Matrix& o) {
        require_same_shape(o);
        for (std::size_t k = 0; k < d_.size(); ++k) d_[k] -= o.d_[k];
        return *this;
    }
    Matrix& operator*=(T s) {
        for (auto& v : d_) v *= s;
        return *this;
    }

    friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
    friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
    friend Matrix operator*(Matrix a, T s) { return a *= s; }
    friend Matrix operator*(T s, Matrix a) { return a *= s; }

    // The matrix product lives as a free template below, routed through
    // the tiled raw-pointer kernel (gemm_acc).

    [[nodiscard]] Matrix transposed() const {
        Matrix t(cols_, rows_);
        for (index_t j = 0; j < cols_; ++j)
            for (index_t i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
        return t;
    }

    /// Max absolute entry (infinity norm of vec(A)).
    [[nodiscard]] double max_abs() const {
        double m = 0;
        for (const auto& v : d_) m = std::max(m, abs_val(v));
        return m;
    }

    /// Frobenius norm.
    [[nodiscard]] double frobenius() const {
        double s = 0;
        for (const auto& v : d_) s += abs_val(v) * abs_val(v);
        return std::sqrt(s);
    }

    bool operator==(const Matrix& o) const {
        return rows_ == o.rows_ && cols_ == o.cols_ && d_ == o.d_;
    }

private:
    static std::size_t check_size(index_t r, index_t c) {
        OPMSIM_REQUIRE(r >= 0 && c >= 0, "matrix dimensions must be non-negative");
        return static_cast<std::size_t>(r) * static_cast<std::size_t>(c);
    }
    void require_same_shape(const Matrix& o) const {
        OPMSIM_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_,
                       "matrix shapes differ");
    }

    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<T> d_;
};

using Matrixd = Matrix<double>;
using Matrixz = Matrix<cplx>;
using Vectord = std::vector<double>;
using Vectorz = std::vector<cplx>;

/// C += A * B on raw column-major storage with explicit leading
/// dimensions: C is mr x nc (ldc), A is mr x kc (lda), B is kc x nc (ldb).
/// The jki loop is tiled 64x64 over (j, k) so the active panel of `a`
/// stays cache-resident across a whole tile of output columns — the
/// operational matrices (m up to a few thousand) and the generic-basis
/// Kronecker pencils are large enough to thrash without it.  (The
/// supernodal sparse LU deliberately does NOT use this kernel for its
/// panel updates: its operands are at most 64 columns wide, where the
/// tiling is pure overhead — see panel_mult in la/sparse_lu.cpp.)
/// Within one output column the k-accumulation order is increasing and
/// independent of nc, so per-column results are bit-identical whether
/// columns are computed one at a time or batched.
template <class T>
void gemm_acc(index_t mr, index_t nc, index_t kc, const T* a, index_t lda,
              const T* b, index_t ldb, T* c, index_t ldc) {
    constexpr index_t tile = 64;
    for (index_t k0 = 0; k0 < kc; k0 += tile) {
        const index_t k1 = std::min(k0 + tile, kc);
        for (index_t j0 = 0; j0 < nc; j0 += tile) {
            const index_t j1 = std::min(j0 + tile, nc);
            for (index_t j = j0; j < j1; ++j) {
                T* cj = c + j * ldc;
                for (index_t k = k0; k < k1; ++k) {
                    const T bkj = b[static_cast<std::size_t>(j * ldb + k)];
                    if (bkj == T{}) continue;
                    const T* ak = a + k * lda;
                    for (index_t i = 0; i < mr; ++i) cj[i] += ak[i] * bkj;
                }
            }
        }
    }
}

template <class T>
Matrix<T> operator*(const Matrix<T>& a, const Matrix<T>& b) {
    OPMSIM_REQUIRE(a.cols() == b.rows(), "matmul: inner dimensions differ");
    Matrix<T> c(a.rows(), b.cols());
    gemm_acc(a.rows(), b.cols(), a.cols(), a.data(), a.rows(), b.data(),
             b.rows(), c.data(), a.rows());
    return c;
}

/// y = A x.
template <class T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
    OPMSIM_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
                   "matvec: dimension mismatch");
    std::vector<T> y(static_cast<std::size_t>(a.rows()), T{});
    for (index_t j = 0; j < a.cols(); ++j) {
        const T xj = x[static_cast<std::size_t>(j)];
        if (xj == T{}) continue;
        const T* aj = a.col(j);
        for (index_t i = 0; i < a.rows(); ++i) y[static_cast<std::size_t>(i)] += aj[i] * xj;
    }
    return y;
}

/// y += alpha * x.
template <class T>
void axpy(T alpha, const std::vector<T>& x, std::vector<T>& y) {
    OPMSIM_REQUIRE(x.size() == y.size(), "axpy: dimension mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// Euclidean norm.
template <class T>
double norm2(const std::vector<T>& x) {
    double s = 0;
    for (const auto& v : x) s += abs_val(v) * abs_val(v);
    return std::sqrt(s);
}

/// Max-abs entry.
template <class T>
double norm_inf(const std::vector<T>& x) {
    double m = 0;
    for (const auto& v : x) m = std::max(m, abs_val(v));
    return m;
}

/// Max absolute entry-wise difference between two same-shaped matrices.
template <class T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
    OPMSIM_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                   "max_abs_diff: shapes differ");
    double m = 0;
    for (index_t j = 0; j < a.cols(); ++j)
        for (index_t i = 0; i < a.rows(); ++i)
            m = std::max(m, abs_val(static_cast<T>(a(i, j) - b(i, j))));
    return m;
}

} // namespace opmsim::la
