#include "la/triangular.hpp"

#include <algorithm>
#include <cmath>

namespace opmsim::la {

Vectord solve_upper(const Matrixd& u, Vectord b) {
    OPMSIM_REQUIRE(u.rows() == u.cols(), "solve_upper: matrix must be square");
    const index_t n = u.rows();
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n, "solve_upper: size mismatch");
    for (index_t i = n - 1; i >= 0; --i) {
        double s = b[static_cast<std::size_t>(i)];
        for (index_t j = i + 1; j < n; ++j) s -= u(i, j) * b[static_cast<std::size_t>(j)];
        const double d = u(i, i);
        if (d == 0.0) throw numerical_error("solve_upper: zero diagonal");
        b[static_cast<std::size_t>(i)] = s / d;
    }
    return b;
}

Vectord solve_lower(const Matrixd& l, Vectord b) {
    OPMSIM_REQUIRE(l.rows() == l.cols(), "solve_lower: matrix must be square");
    const index_t n = l.rows();
    OPMSIM_REQUIRE(static_cast<index_t>(b.size()) == n, "solve_lower: size mismatch");
    for (index_t i = 0; i < n; ++i) {
        double s = b[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < i; ++j) s -= l(i, j) * b[static_cast<std::size_t>(j)];
        const double d = l(i, i);
        if (d == 0.0) throw numerical_error("solve_lower: zero diagonal");
        b[static_cast<std::size_t>(i)] = s / d;
    }
    return b;
}

void solve_unit_lower_panel(const double* panel, index_t ldp, index_t w,
                            double* x, index_t ldx, index_t nrhs) {
    for (index_t r = 0; r < nrhs; ++r) {
        double* __restrict xr = x + r * ldx;
        for (index_t k = 0; k < w; ++k) {
            const double xk = xr[k];
            if (xk == 0.0) continue;
            const double* __restrict lk = panel + k * ldp;
            for (index_t i = k + 1; i < w; ++i) xr[i] -= lk[i] * xk;
        }
    }
}

void solve_upper_panel(const double* panel, index_t ldp, index_t w, double* x,
                       index_t ldx, index_t nrhs) {
    for (index_t r = 0; r < nrhs; ++r) {
        double* __restrict xr = x + r * ldx;
        for (index_t k = w - 1; k >= 0; --k) {
            const double* __restrict uk = panel + k * ldp;
            const double xk = xr[k] / uk[k];
            xr[k] = xk;
            if (xk == 0.0) continue;
            for (index_t i = 0; i < k; ++i) xr[i] -= uk[i] * xk;
        }
    }
}

TriangularEig eig_upper_triangular(const Matrixd& t, double sep_tol) {
    OPMSIM_REQUIRE(t.rows() == t.cols(), "eig_upper_triangular: square required");
    const index_t n = t.rows();

    TriangularEig out;
    out.lambda.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) out.lambda[static_cast<std::size_t>(i)] = t(i, i);

    // Separation check: the back-substitution divides by (lambda_k - lambda_i).
    for (index_t i = 0; i < n; ++i)
        for (index_t k = i + 1; k < n; ++k) {
            const double li = t(i, i), lk = t(k, k);
            const double scale = std::max({std::abs(li), std::abs(lk), 1.0});
            if (std::abs(lk - li) < sep_tol * scale)
                throw numerical_error(
                    "eig_upper_triangular: repeated (or nearly repeated) "
                    "eigenvalues; use the nilpotent-series construction instead");
        }

    // Eigenvector for lambda_k: v(k)=1, entries above solved bottom-up from
    // (T - lambda_k I) v = 0, entries below are zero.
    Matrixd v = Matrixd::identity(n);
    for (index_t k = 0; k < n; ++k) {
        const double lk = t(k, k);
        for (index_t i = k - 1; i >= 0; --i) {
            double s = 0;
            for (index_t j = i + 1; j <= k; ++j) s += t(i, j) * v(j, k);
            v(i, k) = s / (lk - t(i, i));
        }
    }

    // Invert the unit upper-triangular V by back-substitution per column.
    Matrixd vi = Matrixd::identity(n);
    for (index_t c = 0; c < n; ++c) {
        for (index_t i = c - 1; i >= 0; --i) {
            double s = (i == c) ? 1.0 : 0.0;
            for (index_t j = i + 1; j <= c; ++j) s -= v(i, j) * vi(j, c);
            vi(i, c) = s;
        }
    }

    out.v = std::move(v);
    out.v_inv = std::move(vi);
    return out;
}

Matrixd fractional_power_upper(const Matrixd& t, double alpha, double sep_tol) {
    const TriangularEig e = eig_upper_triangular(t, sep_tol);
    const index_t n = t.rows();
    for (index_t i = 0; i < n; ++i)
        OPMSIM_REQUIRE(e.lambda[static_cast<std::size_t>(i)] > 0.0,
                       "fractional_power_upper: diagonal must be positive for a "
                       "real fractional power");
    // V * diag(lambda^alpha) * V^{-1}; scale columns of V first.
    Matrixd scaled = e.v;
    for (index_t j = 0; j < n; ++j) {
        const double p = std::pow(e.lambda[static_cast<std::size_t>(j)], alpha);
        for (index_t i = 0; i <= j; ++i) scaled(i, j) *= p;
    }
    return scaled * e.v_inv;
}

} // namespace opmsim::la
