#include "la/eig.hpp"

#include <cmath>
#include <limits>

#include "la/dense_lu.hpp"

namespace opmsim::la {

namespace {

/// Householder reduction to upper Hessenberg form, in place.
void hessenberg(Matrixd& a) {
    const index_t n = a.rows();
    Vectord v(static_cast<std::size_t>(n));
    for (index_t k = 0; k + 2 < n; ++k) {
        // Householder vector for column k below the subdiagonal.
        double norm = 0;
        for (index_t i = k + 1; i < n; ++i) norm += a(i, k) * a(i, k);
        norm = std::sqrt(norm);
        if (norm == 0.0) continue;
        const double x0 = a(k + 1, k);
        const double alpha = (x0 >= 0) ? -norm : norm;
        double vnorm2 = 0;
        for (index_t i = k + 1; i < n; ++i) {
            v[static_cast<std::size_t>(i)] = a(i, k);
        }
        v[static_cast<std::size_t>(k + 1)] -= alpha;
        for (index_t i = k + 1; i < n; ++i)
            vnorm2 += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
        if (vnorm2 == 0.0) continue;
        const double tau = 2.0 / vnorm2;

        // A <- P A  (rows k+1..n-1, all columns)
        for (index_t j = k; j < n; ++j) {
            double dot = 0;
            for (index_t i = k + 1; i < n; ++i) dot += v[static_cast<std::size_t>(i)] * a(i, j);
            dot *= tau;
            for (index_t i = k + 1; i < n; ++i) a(i, j) -= dot * v[static_cast<std::size_t>(i)];
        }
        // A <- A P  (all rows, columns k+1..n-1)
        for (index_t i = 0; i < n; ++i) {
            double dot = 0;
            for (index_t j = k + 1; j < n; ++j) dot += a(i, j) * v[static_cast<std::size_t>(j)];
            dot *= tau;
            for (index_t j = k + 1; j < n; ++j) a(i, j) -= dot * v[static_cast<std::size_t>(j)];
        }
        a(k + 1, k) = alpha;
        for (index_t i = k + 2; i < n; ++i) a(i, k) = 0.0;
    }
}

/// Householder reflection data for a 2- or 3-vector.
struct House {
    double v[3];
    double tau = 0.0;  // 0 => identity
    int len = 0;
};

House make_house(const double* x, int len) {
    House h;
    h.len = len;
    double norm = 0;
    for (int i = 0; i < len; ++i) norm += x[i] * x[i];
    norm = std::sqrt(norm);
    if (norm == 0.0) return h;
    const double alpha = (x[0] >= 0) ? -norm : norm;
    double vnorm2 = 0;
    for (int i = 0; i < len; ++i) h.v[i] = x[i];
    h.v[0] -= alpha;
    for (int i = 0; i < len; ++i) vnorm2 += h.v[i] * h.v[i];
    if (vnorm2 == 0.0) return h;
    h.tau = 2.0 / vnorm2;
    return h;
}

/// Apply P = I - tau v v^T from the left to rows r..r+len-1, cols c0..c1.
void apply_left(Matrixd& a, const House& h, index_t r, index_t c0, index_t c1) {
    if (h.tau == 0.0) return;
    for (index_t j = c0; j <= c1; ++j) {
        double dot = 0;
        for (int i = 0; i < h.len; ++i) dot += h.v[i] * a(r + i, j);
        dot *= h.tau;
        for (int i = 0; i < h.len; ++i) a(r + i, j) -= dot * h.v[i];
    }
}

/// Apply P from the right to cols c..c+len-1, rows r0..r1.
void apply_right(Matrixd& a, const House& h, index_t c, index_t r0, index_t r1) {
    if (h.tau == 0.0) return;
    for (index_t i = r0; i <= r1; ++i) {
        double dot = 0;
        for (int j = 0; j < h.len; ++j) dot += a(i, c + j) * h.v[j];
        dot *= h.tau;
        for (int j = 0; j < h.len; ++j) a(i, c + j) -= dot * h.v[j];
    }
}

/// Eigenvalues of the trailing 2x2 block [[a,b],[c,d]].
void eig2x2(double a, double b, double c, double d, cplx& l1, cplx& l2) {
    const double tr = a + d;
    const double det = a * d - b * c;
    const double disc = 0.25 * tr * tr - det;
    if (disc >= 0) {
        const double rt = std::sqrt(disc);
        // Stable formulation: compute the larger root first.
        const double s = (tr >= 0) ? 0.5 * tr + rt : 0.5 * tr - rt;
        l1 = cplx(s, 0);
        l2 = cplx(s != 0.0 ? det / s : 0.5 * tr - rt, 0);
    } else {
        const double im = std::sqrt(-disc);
        l1 = cplx(0.5 * tr, im);
        l2 = cplx(0.5 * tr, -im);
    }
}

} // namespace

std::vector<cplx> eig_values(Matrixd a, int max_sweeps_per_eig) {
    OPMSIM_REQUIRE(a.rows() == a.cols(), "eig_values: square matrix required");
    const index_t n = a.rows();
    std::vector<cplx> eigs;
    eigs.reserve(static_cast<std::size_t>(n));
    if (n == 0) return eigs;

    hessenberg(a);
    const double eps = std::numeric_limits<double>::epsilon();

    index_t u = n - 1;
    int iter = 0;
    while (u >= 0) {
        // Deflate negligible subdiagonals in the active block.
        index_t l = u;
        while (l > 0) {
            const double sub = std::abs(a(l, l - 1));
            const double scale = std::abs(a(l - 1, l - 1)) + std::abs(a(l, l));
            if (sub <= eps * std::max(scale, 1e-300)) {
                a(l, l - 1) = 0.0;
                break;
            }
            --l;
        }

        if (l == u) {
            eigs.emplace_back(a(u, u), 0.0);
            --u;
            iter = 0;
            continue;
        }
        if (l == u - 1) {
            cplx l1, l2;
            eig2x2(a(u - 1, u - 1), a(u - 1, u), a(u, u - 1), a(u, u), l1, l2);
            eigs.push_back(l1);
            eigs.push_back(l2);
            u -= 2;
            iter = 0;
            continue;
        }

        if (++iter > max_sweeps_per_eig)
            throw numerical_error("eig_values: QR iteration failed to converge");

        // Francis double shift (exceptional ad-hoc shift every 10 sweeps).
        double s, t;
        if (iter % 10 == 0) {
            const double sx = std::abs(a(u, u - 1)) + std::abs(a(u - 1, u - 2));
            s = 1.5 * sx;
            t = sx * sx;
        } else {
            s = a(u - 1, u - 1) + a(u, u);
            t = a(u - 1, u - 1) * a(u, u) - a(u - 1, u) * a(u, u - 1);
        }

        double x = a(l, l) * a(l, l) + a(l, l + 1) * a(l + 1, l) - s * a(l, l) + t;
        double y = a(l + 1, l) * (a(l, l) + a(l + 1, l + 1) - s);
        double z = a(l + 2, l + 1) * a(l + 1, l);

        for (index_t k = l; k <= u - 2; ++k) {
            const double xyz[3] = {x, y, z};
            const House h = make_house(xyz, 3);
            const index_t c0 = (k > l) ? k - 1 : l;
            apply_left(a, h, k, c0, n - 1);
            apply_right(a, h, k, 0, std::min<index_t>(k + 3, u));
            x = a(k + 1, k);
            y = a(k + 2, k);
            if (k < u - 2) z = a(k + 3, k);
        }
        const double xy[2] = {x, y};
        const House h2 = make_house(xy, 2);
        apply_left(a, h2, u - 1, u - 2, n - 1);
        apply_right(a, h2, u - 1, 0, u);
    }
    return eigs;
}

std::vector<cplx> generalized_eig_values(const Matrixd& e, const Matrixd& a) {
    OPMSIM_REQUIRE(e.rows() == e.cols() && a.rows() == a.cols() && e.rows() == a.rows(),
                   "generalized_eig_values: shape mismatch");
    const DenseLu<double> lu(e);  // throws numerical_error if E singular
    return eig_values(lu.solve(a));
}

bool fractional_stable(const std::vector<cplx>& eigs, double alpha, double margin_rad) {
    OPMSIM_REQUIRE(alpha > 0.0, "fractional_stable: alpha must be positive");
    const double bound = alpha * 3.14159265358979323846 / 2.0 + margin_rad;
    for (const cplx& l : eigs) {
        if (std::abs(l) == 0.0) continue;  // marginal origin modes: treat as stable boundary
        if (std::abs(std::arg(l)) <= bound) return false;
    }
    return true;
}

} // namespace opmsim::la
