#pragma once
/// \file triangular.hpp
/// \brief Triangular solves and the upper-triangular eigendecomposition used
///        for fractional powers of the adaptive-step differential matrix.
///
/// The paper's eq. (25) computes D̃^α for adaptive time steps "using
/// eigendecomposition-based methods": when all steps h_i are distinct the
/// upper-triangular D̃ has distinct eigenvalues 2/h_i on its diagonal, so an
/// upper-triangular eigenvector matrix V exists and
///     D̃^α = V diag((2/h_i)^α) V^{-1}.
/// Both V and V^{-1} are computed by back-substitution in O(m^3).

#include <vector>

#include "la/dense.hpp"

namespace opmsim::la {

/// Solve U x = b for upper-triangular U (zero entries below diagonal are
/// not referenced).  Throws numerical_error on a zero diagonal entry.
Vectord solve_upper(const Matrixd& u, Vectord b);

/// Solve L x = b for lower-triangular L.
Vectord solve_lower(const Matrixd& l, Vectord b);

/// Blocked multi-RHS kernels on raw column-major storage — the dense
/// building blocks of the supernodal sparse-LU solve (la/sparse_lu.hpp).
/// `panel` is the leading w x w block of a column-major array with leading
/// dimension ldp; X is w x nrhs with leading dimension ldx, overwritten in
/// place.  Per RHS column the operation order is fixed and independent of
/// nrhs, so solving k columns at once is bit-identical to k single solves.
///
/// X := L^{-1} X, L = unit lower triangle of the panel block (the strictly
/// upper part and the diagonal are not referenced).
void solve_unit_lower_panel(const double* panel, index_t ldp, index_t w,
                            double* x, index_t ldx, index_t nrhs);

/// X := U^{-1} X, U = upper triangle of the panel block including its
/// diagonal (the strictly lower part is not referenced).  The caller
/// guarantees nonzero diagonal entries (the factorization pivot checks).
void solve_upper_panel(const double* panel, index_t ldp, index_t w,
                       double* x, index_t ldx, index_t nrhs);

/// Eigendecomposition T V = V diag(lambda) of an upper-triangular matrix T
/// with *distinct* diagonal entries.  V is upper triangular with unit
/// diagonal; lambda_i = T(i,i).
struct TriangularEig {
    Matrixd v;             ///< upper-triangular eigenvectors, unit diagonal
    Matrixd v_inv;         ///< inverse of v (also unit upper triangular)
    Vectord lambda;        ///< eigenvalues (the diagonal of T)
};

/// Compute the eigendecomposition above.  Throws numerical_error if two
/// diagonal entries are closer than \p sep_tol relative to their magnitude
/// (the decomposition becomes numerically meaningless; callers should fall
/// back to the nilpotent-series construction for repeated steps).
TriangularEig eig_upper_triangular(const Matrixd& t, double sep_tol = 1e-10);

/// Real fractional power T^alpha of an upper-triangular matrix with
/// distinct positive diagonal entries, via the eigendecomposition above.
Matrixd fractional_power_upper(const Matrixd& t, double alpha,
                               double sep_tol = 1e-10);

} // namespace opmsim::la
