#include "la/sparse.hpp"

#include <algorithm>
#include <numeric>

namespace opmsim::la {

CscMatrix::CscMatrix(const Triplets& t) : rows_(t.rows_), cols_(t.cols_) {
    const std::size_t nz = t.nnz();
    // Count entries per column.
    std::vector<index_t> count(static_cast<std::size_t>(cols_) + 1, 0);
    for (std::size_t k = 0; k < nz; ++k) ++count[static_cast<std::size_t>(t.j_[k]) + 1];
    std::partial_sum(count.begin(), count.end(), count.begin());

    // Scatter (unsorted within column for now).
    std::vector<index_t> ri(nz);
    std::vector<double> vv(nz);
    std::vector<index_t> next(count.begin(), count.end() - 1);
    for (std::size_t k = 0; k < nz; ++k) {
        const index_t pos = next[static_cast<std::size_t>(t.j_[k])]++;
        ri[static_cast<std::size_t>(pos)] = t.i_[k];
        vv[static_cast<std::size_t>(pos)] = t.v_[k];
    }

    // Sort rows within each column and sum duplicates.
    colp_.assign(static_cast<std::size_t>(cols_) + 1, 0);
    rowi_.reserve(nz);
    val_.reserve(nz);
    std::vector<std::pair<index_t, double>> buf;
    for (index_t j = 0; j < cols_; ++j) {
        buf.clear();
        for (index_t p = count[static_cast<std::size_t>(j)];
             p < count[static_cast<std::size_t>(j) + 1]; ++p)
            buf.emplace_back(ri[static_cast<std::size_t>(p)], vv[static_cast<std::size_t>(p)]);
        std::sort(buf.begin(), buf.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (std::size_t k = 0; k < buf.size(); ++k) {
            if (!rowi_.empty() &&
                static_cast<index_t>(rowi_.size()) > colp_[static_cast<std::size_t>(j)] &&
                rowi_.back() == buf[k].first) {
                val_.back() += buf[k].second;  // duplicate: accumulate
            } else {
                rowi_.push_back(buf[k].first);
                val_.push_back(buf[k].second);
            }
        }
        colp_[static_cast<std::size_t>(j) + 1] = static_cast<index_t>(rowi_.size());
    }
}

CscMatrix CscMatrix::from_dense(const Matrixd& a, double drop_tol) {
    Triplets t(a.rows(), a.cols());
    for (index_t j = 0; j < a.cols(); ++j)
        for (index_t i = 0; i < a.rows(); ++i)
            if (std::abs(a(i, j)) > drop_tol) t.add(i, j, a(i, j));
    return CscMatrix(t);
}

CscMatrix CscMatrix::from_parts(index_t rows, index_t cols,
                                std::vector<index_t> col_ptr,
                                std::vector<index_t> row_ind,
                                std::vector<double> values) {
    OPMSIM_REQUIRE(rows >= 0 && cols >= 0,
                   "CscMatrix::from_parts: negative dimension");
    CscMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    // The default-constructed matrix has all-empty arrays; keep that shape
    // round-trippable.
    if (col_ptr.empty() && row_ind.empty() && values.empty()) {
        OPMSIM_REQUIRE(rows == 0 && cols == 0,
                       "CscMatrix::from_parts: empty arrays for nonzero shape");
        return m;
    }
    OPMSIM_REQUIRE(static_cast<index_t>(col_ptr.size()) == cols + 1,
                   "CscMatrix::from_parts: col_ptr size must be cols+1");
    OPMSIM_REQUIRE(col_ptr.front() == 0 &&
                       col_ptr.back() == static_cast<index_t>(row_ind.size()) &&
                       row_ind.size() == values.size(),
                   "CscMatrix::from_parts: inconsistent nnz");
    for (index_t j = 0; j < cols; ++j) {
        const index_t lo = col_ptr[static_cast<std::size_t>(j)];
        const index_t hi = col_ptr[static_cast<std::size_t>(j) + 1];
        OPMSIM_REQUIRE(lo <= hi, "CscMatrix::from_parts: col_ptr not monotone");
        for (index_t k = lo; k < hi; ++k) {
            const index_t i = row_ind[static_cast<std::size_t>(k)];
            OPMSIM_REQUIRE(i >= 0 && i < rows,
                           "CscMatrix::from_parts: row index out of range");
            OPMSIM_REQUIRE(k == lo || row_ind[static_cast<std::size_t>(k) - 1] < i,
                           "CscMatrix::from_parts: rows not strictly "
                           "increasing within a column");
        }
    }
    m.colp_ = std::move(col_ptr);
    m.rowi_ = std::move(row_ind);
    m.val_ = std::move(values);
    return m;
}

CscMatrix CscMatrix::identity(index_t n) {
    Triplets t(n, n);
    for (index_t i = 0; i < n; ++i) t.add(i, i, 1.0);
    return CscMatrix(t);
}

Vectord CscMatrix::matvec(const Vectord& x) const {
    Vectord y(static_cast<std::size_t>(rows_), 0.0);
    gaxpy(1.0, x, y);
    return y;
}

void CscMatrix::gaxpy(double alpha, const Vectord& x, Vectord& y) const {
    OPMSIM_REQUIRE(static_cast<index_t>(x.size()) == cols_ &&
                       static_cast<index_t>(y.size()) == rows_,
                   "CscMatrix::gaxpy: dimension mismatch");
    gaxpy(alpha, x.data(), y.data());
}

void CscMatrix::gaxpy(double alpha, const double* x, double* y) const {
    for (index_t j = 0; j < cols_; ++j) {
        const double xj = alpha * x[static_cast<std::size_t>(j)];
        if (xj == 0.0) continue;
        for (index_t p = colp_[static_cast<std::size_t>(j)];
             p < colp_[static_cast<std::size_t>(j) + 1]; ++p)
            y[static_cast<std::size_t>(rowi_[static_cast<std::size_t>(p)])] +=
                val_[static_cast<std::size_t>(p)] * xj;
    }
}

Vectord CscMatrix::matvec_transposed(const Vectord& x) const {
    OPMSIM_REQUIRE(static_cast<index_t>(x.size()) == rows_,
                   "matvec_transposed: dimension mismatch");
    Vectord y(static_cast<std::size_t>(cols_), 0.0);
    for (index_t j = 0; j < cols_; ++j) {
        double s = 0;
        for (index_t p = colp_[static_cast<std::size_t>(j)];
             p < colp_[static_cast<std::size_t>(j) + 1]; ++p)
            s += val_[static_cast<std::size_t>(p)] *
                 x[static_cast<std::size_t>(rowi_[static_cast<std::size_t>(p)])];
        y[static_cast<std::size_t>(j)] = s;
    }
    return y;
}

CscMatrix CscMatrix::transposed() const {
    Triplets t(cols_, rows_);
    for (index_t j = 0; j < cols_; ++j)
        for (index_t p = colp_[static_cast<std::size_t>(j)];
             p < colp_[static_cast<std::size_t>(j) + 1]; ++p)
            t.add(j, rowi_[static_cast<std::size_t>(p)], val_[static_cast<std::size_t>(p)]);
    return CscMatrix(t);
}

CscMatrix CscMatrix::add(double alpha, const CscMatrix& a, double beta,
                         const CscMatrix& b) {
    OPMSIM_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                   "CscMatrix::add: shapes differ");
    Triplets t(a.rows_, a.cols_);
    for (index_t j = 0; j < a.cols_; ++j) {
        for (index_t p = a.colp_[static_cast<std::size_t>(j)];
             p < a.colp_[static_cast<std::size_t>(j) + 1]; ++p)
            t.add(a.rowi_[static_cast<std::size_t>(p)], j,
                  alpha * a.val_[static_cast<std::size_t>(p)]);
        for (index_t p = b.colp_[static_cast<std::size_t>(j)];
             p < b.colp_[static_cast<std::size_t>(j) + 1]; ++p)
            t.add(b.rowi_[static_cast<std::size_t>(p)], j,
                  beta * b.val_[static_cast<std::size_t>(p)]);
    }
    return CscMatrix(t);
}

Matrixd CscMatrix::to_dense() const {
    Matrixd d(rows_, cols_);
    for (index_t j = 0; j < cols_; ++j)
        for (index_t p = colp_[static_cast<std::size_t>(j)];
             p < colp_[static_cast<std::size_t>(j) + 1]; ++p)
            d(rowi_[static_cast<std::size_t>(p)], j) = val_[static_cast<std::size_t>(p)];
    return d;
}

double CscMatrix::coeff(index_t i, index_t j) const {
    OPMSIM_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                   "CscMatrix::coeff: index out of range");
    const auto first = rowi_.begin() + colp_[static_cast<std::size_t>(j)];
    const auto last = rowi_.begin() + colp_[static_cast<std::size_t>(j) + 1];
    const auto it = std::lower_bound(first, last, i);
    if (it == last || *it != i) return 0.0;
    return val_[static_cast<std::size_t>(it - rowi_.begin())];
}

CscMatrix CscMatrix::permuted(const std::vector<index_t>& perm) const {
    OPMSIM_REQUIRE(rows_ == cols_, "permuted: square matrix required");
    OPMSIM_REQUIRE(static_cast<index_t>(perm.size()) == rows_,
                   "permuted: permutation size mismatch");
    // inv[old] = new
    std::vector<index_t> inv(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
        inv[static_cast<std::size_t>(perm[k])] = static_cast<index_t>(k);
    Triplets t(rows_, cols_);
    for (index_t j = 0; j < cols_; ++j)
        for (index_t p = colp_[static_cast<std::size_t>(j)];
             p < colp_[static_cast<std::size_t>(j) + 1]; ++p)
            t.add(inv[static_cast<std::size_t>(rowi_[static_cast<std::size_t>(p)])],
                  inv[static_cast<std::size_t>(j)], val_[static_cast<std::size_t>(p)]);
    return CscMatrix(t);
}

} // namespace opmsim::la
