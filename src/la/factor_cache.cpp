#include "la/factor_cache.hpp"

#include "util/hash.hpp"

namespace opmsim::la {

namespace {

std::uint64_t pattern_hash(const CscMatrix& a) {
    const index_t dims[2] = {a.rows(), a.cols()};
    std::uint64_t h = fnv1a(dims, sizeof dims);
    h = fnv1a(a.col_ptr().data(), a.col_ptr().size() * sizeof(index_t), h);
    h = fnv1a(a.row_ind().data(), a.row_ind().size() * sizeof(index_t), h);
    return h;
}

std::uint64_t value_hash(const CscMatrix& a) {
    // Bitwise over the doubles: pencils built by the deterministic
    // CscMatrix::add / Triplets pipeline reproduce identical bits, which is
    // exactly the "same scenario" the numeric layer wants to detect.
    return fnv1a(a.values().data(), a.values().size() * sizeof(double));
}

bool same_options(const SparseLuOptions& a, const SparseLuOptions& b) {
    return a.ordering == b.ordering && a.kernel == b.kernel &&
           a.pivot_tol == b.pivot_tol;
}

bool same_pattern(const CscMatrix& a, const SparseLuSymbolic& sym) {
    return a.col_ptr() == sym.pattern_colp() && a.row_ind() == sym.pattern_rowi();
}

} // namespace

FactorCache::SymEntry* FactorCache::find_symbolic(const CscMatrix& a,
                                                  std::uint64_t ph,
                                                  const SparseLuOptions& opt) {
    for (SymEntry& e : sym_)
        if (e.pattern_hash == ph && same_options(e.opt, opt) &&
            same_pattern(a, *e.sym))
            return &e;
    return nullptr;
}

std::shared_ptr<const SparseLuSymbolic> FactorCache::symbolic(
    const CscMatrix& a, const SparseLuOptions& opt, bool* fresh) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return symbolic_locked(a, opt, fresh);
}

std::shared_ptr<const SparseLuSymbolic> FactorCache::symbolic_locked(
    const CscMatrix& a, const SparseLuOptions& opt, bool* fresh) {
    const std::uint64_t ph = pattern_hash(a);
    if (SymEntry* e = find_symbolic(a, ph, opt)) {
        ++sym_hits_;
        if (fresh) *fresh = false;
        return e->sym;
    }
    ++sym_misses_;
    if (fresh) *fresh = true;
    SymEntry e;
    e.pattern_hash = ph;
    e.opt = opt;
    e.sym = std::make_shared<const SparseLuSymbolic>(a, opt);
    sym_.push_back(e);
    return e.sym;
}

std::shared_ptr<const SparseLu> FactorCache::factor(const CscMatrix& a,
                                                    const SparseLuOptions& opt,
                                                    bool* symbolic_fresh,
                                                    bool* numeric_fresh) {
    const std::uint64_t ph = pattern_hash(a);
    const std::uint64_t vh = value_hash(a);
    const auto find = [&]() -> std::shared_ptr<const SparseLu> {
        for (const NumEntry& e : num_) {
            if (e.pattern_hash != ph || e.value_hash != vh ||
                !same_options(e.opt, opt))
                continue;
            if (!same_pattern(a, *e.lu->symbolic()) || e.values != a.values())
                continue;
            return e.lu;
        }
        return nullptr;
    };

    std::shared_ptr<const SparseLuSymbolic> sym;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (std::shared_ptr<const SparseLu> hit = find()) {
            ++num_hits_;
            if (symbolic_fresh) *symbolic_fresh = false;
            if (numeric_fresh) *numeric_fresh = false;
            return hit;
        }
        ++num_misses_;
        if (numeric_fresh) *numeric_fresh = true;
        sym = symbolic_locked(a, opt, symbolic_fresh);
    }

    // Factor OUTSIDE the lock: this is the expensive step, and holding the
    // mutex here would serialize run_batch's worker threads whenever their
    // groups factor different pencils.  Two threads missing on the same
    // key may both factor; the results are bit-identical, so either copy
    // may be cached and returned.
    NumEntry e;
    e.pattern_hash = ph;
    e.value_hash = vh;
    e.opt = opt;
    e.values = a.values();
    e.lu = std::make_shared<const SparseLu>(a, sym);

    const std::lock_guard<std::mutex> lock(mutex_);
    // Evict the most recent insertion, not the oldest: cyclic replay of
    // more keys than the cap (an adaptive run's step-size sequence,
    // re-encountered by the next run) would turn oldest-first eviction
    // into a 0%-hit treadmill, while keeping the old entries resident
    // retains cap-1 stable hits per cycle.
    if (num_.size() >= max_factors_ && !num_.empty()) num_.pop_back();
    num_.push_back(std::move(e));
    return num_.back().lu;
}

std::size_t FactorCache::invalidate(const CscMatrix& a) {
    const std::uint64_t ph = pattern_hash(a);
    const std::uint64_t vh = value_hash(a);
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t removed = 0;
    for (std::size_t i = num_.size(); i-- > 0;) {
        const NumEntry& e = num_[i];
        if (e.pattern_hash != ph || e.value_hash != vh) continue;
        if (!same_pattern(a, *e.lu->symbolic()) || e.values != a.values()) continue;
        num_.erase(num_.begin() + static_cast<std::ptrdiff_t>(i));
        ++removed;
    }
    return removed;
}

void FactorCache::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    sym_.clear();
    num_.clear();
}

} // namespace opmsim::la
