#include "la/factor_cache.hpp"

#include <string>

#include "util/hash.hpp"
#include "util/serial.hpp"

namespace opmsim::la {

namespace {

std::uint64_t pattern_hash(const CscMatrix& a) {
    const index_t dims[2] = {a.rows(), a.cols()};
    std::uint64_t h = fnv1a(dims, sizeof dims);
    h = fnv1a(a.col_ptr().data(), a.col_ptr().size() * sizeof(index_t), h);
    h = fnv1a(a.row_ind().data(), a.row_ind().size() * sizeof(index_t), h);
    return h;
}

std::uint64_t value_hash(const CscMatrix& a) {
    // Bitwise over the doubles: pencils built by the deterministic
    // CscMatrix::add / Triplets pipeline reproduce identical bits, which is
    // exactly the "same scenario" the numeric layer wants to detect.
    return fnv1a(a.values().data(), a.values().size() * sizeof(double));
}

bool same_options(const SparseLuOptions& a, const SparseLuOptions& b) {
    return a.ordering == b.ordering && a.kernel == b.kernel &&
           a.pivot_tol == b.pivot_tol;
}

bool same_pattern(const CscMatrix& a, const SparseLuSymbolic& sym) {
    return a.col_ptr() == sym.pattern_colp() && a.row_ind() == sym.pattern_rowi();
}

} // namespace

FactorCache::SymEntry* FactorCache::find_symbolic(const CscMatrix& a,
                                                  std::uint64_t ph,
                                                  const SparseLuOptions& opt) {
    for (SymEntry& e : sym_)
        if (e.pattern_hash == ph && same_options(e.opt, opt) &&
            same_pattern(a, *e.sym))
            return &e;
    return nullptr;
}

std::shared_ptr<const SparseLuSymbolic> FactorCache::symbolic(
    const CscMatrix& a, const SparseLuOptions& opt, bool* fresh) {
    const util::MutexLock lock(mutex_);
    return symbolic_locked(a, opt, fresh);
}

std::shared_ptr<const SparseLuSymbolic> FactorCache::symbolic_locked(
    const CscMatrix& a, const SparseLuOptions& opt, bool* fresh) {
    const std::uint64_t ph = pattern_hash(a);
    if (SymEntry* e = find_symbolic(a, ph, opt)) {
        ++sym_hits_;
        if (fresh) *fresh = false;
        return e->sym;
    }
    ++sym_misses_;
    if (fresh) *fresh = true;
    SymEntry e;
    e.pattern_hash = ph;
    e.opt = opt;
    e.sym = std::make_shared<const SparseLuSymbolic>(a, opt);
    sym_.push_back(e);
    return e.sym;
}

std::shared_ptr<const SparseLu> FactorCache::find_numeric(
    const CscMatrix& a, std::uint64_t ph, std::uint64_t vh,
    const SparseLuOptions& opt) {
    for (const NumEntry& e : num_) {
        if (e.pattern_hash != ph || e.value_hash != vh ||
            !same_options(e.opt, opt))
            continue;
        if (!same_pattern(a, *e.lu->symbolic()) || e.values != a.values())
            continue;
        return e.lu;
    }
    return nullptr;
}

std::shared_ptr<const SparseLu> FactorCache::factor(const CscMatrix& a,
                                                    const SparseLuOptions& opt,
                                                    bool* symbolic_fresh,
                                                    bool* numeric_fresh) {
    const std::uint64_t ph = pattern_hash(a);
    const std::uint64_t vh = value_hash(a);

    std::shared_ptr<const SparseLuSymbolic> sym;
    {
        const util::MutexLock lock(mutex_);
        if (std::shared_ptr<const SparseLu> hit = find_numeric(a, ph, vh, opt)) {
            ++num_hits_;
            if (symbolic_fresh) *symbolic_fresh = false;
            if (numeric_fresh) *numeric_fresh = false;
            return hit;
        }
        ++num_misses_;
        if (numeric_fresh) *numeric_fresh = true;
        sym = symbolic_locked(a, opt, symbolic_fresh);
    }

    // Factor OUTSIDE the lock: this is the expensive step, and holding the
    // mutex here would serialize run_batch's worker threads whenever their
    // groups factor different pencils.  Two threads missing on the same
    // key may both factor (the results are bit-identical), but only one
    // copy may be cached — the recheck below keeps the entry set deduped
    // so racing inserts never burn eviction capacity on clones.
    NumEntry e;
    e.pattern_hash = ph;
    e.value_hash = vh;
    e.opt = opt;
    e.values = a.values();
    e.lu = std::make_shared<const SparseLu>(a, sym);

    const util::MutexLock lock(mutex_);
    if (std::shared_ptr<const SparseLu> raced = find_numeric(a, ph, vh, opt))
        return raced;
    // Evict the most recent insertion, not the oldest: cyclic replay of
    // more keys than the cap (an adaptive run's step-size sequence,
    // re-encountered by the next run) would turn oldest-first eviction
    // into a 0%-hit treadmill, while keeping the old entries resident
    // retains cap-1 stable hits per cycle.
    if (num_.size() >= max_factors_ && !num_.empty()) num_.pop_back();
    num_.push_back(std::move(e));
    return num_.back().lu;
}

std::size_t FactorCache::invalidate(const CscMatrix& a) {
    const std::uint64_t ph = pattern_hash(a);
    const std::uint64_t vh = value_hash(a);
    const util::MutexLock lock(mutex_);
    std::size_t removed = 0;
    for (std::size_t i = num_.size(); i-- > 0;) {
        const NumEntry& e = num_[i];
        if (e.pattern_hash != ph || e.value_hash != vh) continue;
        if (!same_pattern(a, *e.lu->symbolic()) || e.values != a.values()) continue;
        num_.erase(num_.begin() + static_cast<std::ptrdiff_t>(i));
        ++removed;
    }
    return removed;
}

void FactorCache::clear() {
    const util::MutexLock lock(mutex_);
    sym_.clear();
    num_.clear();
}

namespace {
/// The same fingerprint pattern_hash() computes from a CscMatrix, derived
/// from an analysis's stored pattern (pencils are square: rows == cols ==
/// size()).  Loading verifies the snapshot's stored hash against this.
std::uint64_t pattern_hash_of(const SparseLuSymbolic& sym) {
    const index_t dims[2] = {sym.size(), sym.size()};
    std::uint64_t h = fnv1a(dims, sizeof dims);
    h = fnv1a(sym.pattern_colp().data(),
              sym.pattern_colp().size() * sizeof(index_t), h);
    h = fnv1a(sym.pattern_rowi().data(),
              sym.pattern_rowi().size() * sizeof(index_t), h);
    return h;
}
} // namespace

void FactorCache::save_symbolic(util::ByteWriter& w) {
    const util::MutexLock lock(mutex_);
    w.u64(sym_.size());
    for (const SymEntry& e : sym_) {
        w.u64(e.pattern_hash);
        w.u8(static_cast<std::uint8_t>(e.opt.ordering));
        w.u8(static_cast<std::uint8_t>(e.opt.kernel));
        w.f64(e.opt.pivot_tol);
        e.sym->save(w);
    }
}

void FactorCache::load_symbolic(util::ByteReader& r) {
    const std::uint64_t count = r.count(8 + 2 + 8, "symbolic entries");
    for (std::uint64_t k = 0; k < count; ++k) {
        SymEntry e;
        e.pattern_hash = r.u64();
        const auto ordering = r.u8();
        const auto kernel = r.u8();
        if (ordering >
                static_cast<std::uint8_t>(SparseLuOptions::Ordering::automatic) ||
            kernel > static_cast<std::uint8_t>(SparseLuOptions::Kernel::automatic))
            r.fail("invalid SparseLuOptions enum in symbolic entry");
        e.opt.ordering = static_cast<SparseLuOptions::Ordering>(ordering);
        e.opt.kernel = static_cast<SparseLuOptions::Kernel>(kernel);
        e.opt.pivot_tol = r.f64();
        e.sym = SparseLuSymbolic::load(r);
        // Fingerprint verification: the key must be the hash of the loaded
        // pattern, or lookups would silently miss (or worse, collide).
        if (pattern_hash_of(*e.sym) != e.pattern_hash)
            r.fail("symbolic entry fingerprint mismatch (pattern hash " +
                   std::to_string(e.pattern_hash) +
                   " does not match the stored analysis)");
        const util::MutexLock lock(mutex_);
        bool dup = false;
        for (const SymEntry& have : sym_)
            if (have.pattern_hash == e.pattern_hash &&
                same_options(have.opt, e.opt)) {
                dup = true;
                break;
            }
        if (!dup) sym_.push_back(std::move(e));
    }
}

} // namespace opmsim::la
