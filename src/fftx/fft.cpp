#include "fftx/fft.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <numbers>

#include "util/check.hpp"

/// Function multi-versioning for the butterfly kernels: on x86-64
/// GNU/Linux each kernel is compiled twice — a baseline ISA version and
/// an x86-64-v3 (AVX2 + FMA) version — and the loader's ifunc resolver
/// picks once at startup.  The wide version roughly halves the butterfly
/// wall clock (the loops vectorize at 32 bytes instead of 16) with zero
/// per-call dispatch cost and no change to the build's baseline ISA.
#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__)
#define OPMSIM_FFT_KERNEL __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define OPMSIM_FFT_KERNEL
#endif

namespace opmsim::fftx {

namespace {

constexpr double kPi = std::numbers::pi;

/// Stage-major forward twiddle table for size n: the len/2 roots
/// exp(-2*pi*i*k/len) of every stage len = 2, 4, …, n concatenated as
/// interleaved (re, im) doubles, so the butterfly loop reads them
/// contiguously.  Each root is computed directly from its own angle — the
/// multiplicative twiddle recurrence accumulates O(len * eps) phase
/// error, which was the accuracy bottleneck of the convolution engine on
/// badly scaled kernels.  Cached per size: the convolution plans hammer a
/// handful of dyadic sizes, so the trig cost is paid once.
const std::vector<double>& twiddle_table(std::size_t n) {
    thread_local std::map<std::size_t, std::vector<double>> cache;
    std::vector<double>& tw = cache[n];
    if (tw.empty()) {
        tw.reserve(2 * (n - 1));
        for (std::size_t len = 2; len <= n; len <<= 1)
            for (std::size_t k = 0; k < len / 2; ++k) {
                const double ang = -2.0 * kPi * static_cast<double>(k) /
                                   static_cast<double>(len);
                tw.push_back(std::cos(ang));
                tw.push_back(std::sin(ang));
            }
    }
    return tw;
}

/// Bit-reversal permutation shared by both power-of-two kernels.
void bit_reverse(std::vector<cplx>& xc) {
    const std::size_t n = xc.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(xc[i], xc[j]);
    }
}

/// One radix-2 stage of width `len` over the whole signal.  Returns the
/// advanced twiddle-table cursor.
///
/// The butterflies run on restrict-qualified raw doubles
/// (std::complex<double> is layout-compatible with double[2]): with
/// std::complex element access the compiler must assume the twiddle reads
/// alias the data writes and reorders nothing, which costs ~8x throughput
/// on this loop.
OPMSIM_FFT_KERNEL
const double* radix2_stage(double* __restrict__ x, std::size_t n,
                           std::size_t len, const double* __restrict__ tw,
                           double wsign) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < half; ++k) {
            const double wr = tw[2 * k];
            const double wi = wsign * tw[2 * k + 1];
            const std::size_t p = 2 * (i + k);
            const std::size_t q = 2 * (i + k + half);
            const double ur = x[p], ui = x[p + 1];
            const double zr = x[q], zi = x[q + 1];
            const double vr = zr * wr - zi * wi;
            const double vi = zr * wi + zi * wr;
            x[p] = ur + vr;
            x[p + 1] = ui + vi;
            x[q] = ur - vr;
            x[q + 1] = ui - vi;
        }
    }
    return tw + 2 * half;
}

/// Radix-4 twiddle triples for size n: for every fused stage pair
/// (L, 2L) in fft_pow2's schedule and every k < L/2, the roots
/// (v, v^2, v^3) with v = exp(-pi*i*k/L), interleaved re/im — the three
/// pre-rotations of the radix-4 butterfly.  Each root is computed
/// directly from its own angle (same accuracy rationale as
/// twiddle_table) and cached per size.
const std::vector<double>& radix4_twiddle_table(std::size_t n) {
    thread_local std::map<std::size_t, std::vector<double>> cache;
    std::vector<double>& tw = cache[n];
    if (tw.empty()) {
        std::size_t len =
            static_cast<unsigned>(std::countr_zero(n)) % 2 != 0 ? 4 : 2;
        for (; len <= n; len <<= 2)
            for (std::size_t k = 0; k < len / 2; ++k) {
                const double ang =
                    -kPi * static_cast<double>(k) / static_cast<double>(len);
                for (int t = 1; t <= 3; ++t) {
                    tw.push_back(std::cos(static_cast<double>(t) * ang));
                    tw.push_back(std::sin(static_cast<double>(t) * ang));
                }
            }
        if (tw.empty()) tw.push_back(0.0);  // n <= 2: keep .data() valid
    }
    return tw;
}

/// The twiddle-free len = 2 stage (its only root is 1): opens the
/// transform when the total stage count is odd so the radix-4 passes
/// cover the rest.
OPMSIM_FFT_KERNEL void radix2_stage2(double* __restrict__ x, std::size_t n) {
    for (std::size_t i = 0; i < n; i += 2) {
        const std::size_t p = 2 * i;
        const double ar = x[p], ai = x[p + 1];
        const double br = x[p + 2], bi = x[p + 3];
        x[p] = ar + br;
        x[p + 1] = ai + bi;
        x[p + 2] = ar - br;
        x[p + 3] = ai - bi;
    }
}

/// First radix-4 pass (len = 2): every twiddle is 1, so each block of
/// four points is a twiddle-free 4-point DFT — pure additions.  This pass
/// touches every point, so specializing it removes a quarter of all
/// butterfly multiplies at even stage counts.
template <bool Forward>
OPMSIM_FFT_KERNEL void radix4_first_pass(double* __restrict__ x, std::size_t n) {
    for (std::size_t i = 0; i < n; i += 4) {
        const std::size_t p = 2 * i;
        const double ar = x[p], ai = x[p + 1];
        const double br = x[p + 2], bi = x[p + 3];
        const double cr = x[p + 4], ci = x[p + 5];
        const double dr = x[p + 6], di = x[p + 7];
        const double t0r = ar + br, t0i = ai + bi;
        const double t1r = ar - br, t1i = ai - bi;
        const double t2r = cr + dr, t2i = ci + di;
        const double t3r = cr - dr, t3i = ci - di;
        x[p] = t0r + t2r;
        x[p + 1] = t0i + t2i;
        x[p + 4] = t0r - t2r;
        x[p + 5] = t0i - t2i;
        if constexpr (Forward) {
            x[p + 2] = t1r + t3i;
            x[p + 3] = t1i - t3r;
            x[p + 6] = t1r - t3i;
            x[p + 7] = t1i + t3r;
        } else {
            x[p + 2] = t1r - t3i;
            x[p + 3] = t1i + t3r;
            x[p + 6] = t1r + t3i;
            x[p + 7] = t1i - t3r;
        }
    }
}

/// Radix-4 pass covering the two radix-2 stages (len, 2*len) in one sweep
/// with the classic 3-multiply butterfly: with v = exp(-pi*i*k/len) the
/// four outputs are the combinations of p = a, q = v^2 b, r = v c,
/// s = v^3 d —
///     out0 = (p+q) + (r+s),   out2 = (p+q) - (r+s),
///     out1 = (p-q) - i(r-s),  out3 = (p-q) + i(r-s)   (forward)
/// — 3 complex multiplies per 4 points where two radix-2 stages spend 4,
/// and each point is loaded/stored once per pass instead of twice.  The
/// transform direction is a template parameter so the conjugations and
/// the ±i rotation are resolved at compile time instead of costing five
/// extra multiplies per butterfly in the hot loop.  Returns the cursor
/// advanced past this stage's twiddle triples.
template <bool Forward>
OPMSIM_FFT_KERNEL const double* radix4_pass(double* __restrict__ x, std::size_t n,
                                            std::size_t len,
                                            const double* __restrict__ tw) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += 2 * len) {
        for (std::size_t k = 0; k < half; ++k) {
            const double* w = tw + 6 * k;
            const double vr = w[0], vi = Forward ? w[1] : -w[1];
            const double v2r = w[2], v2i = Forward ? w[3] : -w[3];
            const double v3r = w[4], v3i = Forward ? w[5] : -w[5];
            const std::size_t p0 = 2 * (i + k);
            const std::size_t p1 = p0 + 2 * half;
            const std::size_t p2 = 2 * (i + k + len);
            const std::size_t p3 = p2 + 2 * half;
            const double ar = x[p0], ai = x[p0 + 1];
            const double br = x[p1], bi = x[p1 + 1];
            const double cr = x[p2], ci = x[p2 + 1];
            const double dr = x[p3], di = x[p3 + 1];
            const double qr = br * v2r - bi * v2i;
            const double qi = br * v2i + bi * v2r;
            const double rr = cr * vr - ci * vi;
            const double ri = cr * vi + ci * vr;
            const double sr = dr * v3r - di * v3i;
            const double si = dr * v3i + di * v3r;
            const double t0r = ar + qr, t0i = ai + qi;
            const double t1r = ar - qr, t1i = ai - qi;
            const double t2r = rr + sr, t2i = ri + si;
            const double t3r = rr - sr, t3i = ri - si;
            x[p0] = t0r + t2r;
            x[p0 + 1] = t0i + t2i;
            x[p2] = t0r - t2r;
            x[p2 + 1] = t0i - t2i;
            // -i (r - s) forward, +i (r - s) inverse.
            if constexpr (Forward) {
                x[p1] = t1r + t3i;
                x[p1 + 1] = t1i - t3r;
                x[p3] = t1r - t3i;
                x[p3 + 1] = t1i + t3r;
            } else {
                x[p1] = t1r - t3i;
                x[p1 + 1] = t1i + t3r;
                x[p3] = t1r + t3i;
                x[p3 + 1] = t1i - t3r;
            }
        }
    }
    return tw + 6 * half;
}

/// Iterative power-of-two Cooley–Tukey, sign = -1 forward, +1 inverse (no
/// normalization here).  Stages run as radix-4 passes; when the stage
/// count is odd, the trivial len = 2 stage opens the transform so the
/// remainder pairs up.
template <bool Forward>
void fft_pow2_dir(std::vector<cplx>& xc) {
    const std::size_t n = xc.size();
    bit_reverse(xc);
    double* __restrict__ x = reinterpret_cast<double*>(xc.data());
    const double* tw = radix4_twiddle_table(n).data();
    std::size_t len;
    if (static_cast<unsigned>(std::countr_zero(n)) % 2 != 0) {
        radix2_stage2(x, n);
        len = 4;
    } else {
        radix4_first_pass<Forward>(x, n);
        tw += 6;  // past the trivial len = 2 twiddle triple
        len = 8;
    }
    for (; len <= n; len <<= 2) tw = radix4_pass<Forward>(x, n, len, tw);
}

void fft_pow2(std::vector<cplx>& xc, int sign) {
    if (sign < 0)
        fft_pow2_dir<true>(xc);
    else
        fft_pow2_dir<false>(xc);
}

/// Bluestein chirp-z: arbitrary-size DFT via a power-of-two convolution.
void fft_bluestein(std::vector<cplx>& x, int sign) {
    const std::size_t n = x.size();
    const std::size_t m = next_pow2(2 * n - 1);

    // chirp[k] = exp(sign * i * pi * k^2 / n)
    std::vector<cplx> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n avoids precision loss for large k.
        const double e = static_cast<double>((k * k) % (2 * n));
        const double ang = sign * kPi * e / static_cast<double>(n);
        chirp[k] = cplx(std::cos(ang), std::sin(ang));
    }

    std::vector<cplx> a(m, cplx(0, 0)), b(m, cplx(0, 0));
    for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
    b[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);

    fft_pow2(a, -1);
    fft_pow2(b, -1);
    for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
    fft_pow2(a, +1);
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * inv_m * chirp[k];
}

void transform(std::vector<cplx>& x, int sign) {
    if (x.size() <= 1) return;
    if (is_pow2(x.size()))
        fft_pow2(x, sign);
    else
        fft_bluestein(x, sign);
}

} // namespace

void fft_pow2_radix2(std::vector<cplx>& x, int sign) {
    OPMSIM_REQUIRE(is_pow2(x.size()), "fft_pow2_radix2: size must be a power of two");
    if (x.size() <= 1) return;
    const std::size_t n = x.size();
    bit_reverse(x);
    double* __restrict__ d = reinterpret_cast<double*>(x.data());
    const double* tw = twiddle_table(n).data();
    const double wsign = sign > 0 ? -1.0 : 1.0;
    for (std::size_t len = 2; len <= n; len <<= 1)
        tw = radix2_stage(d, n, len, tw, wsign);
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

void fft(std::vector<cplx>& x) { transform(x, -1); }

void ifft(std::vector<cplx>& x) {
    transform(x, +1);
    const double inv_n = 1.0 / static_cast<double>(x.size() == 0 ? 1 : x.size());
    for (auto& v : x) v *= inv_n;
}

void ifft_unnormalized(std::vector<cplx>& x) { transform(x, +1); }

std::vector<cplx> fft_real(const std::vector<double>& x) {
    std::vector<cplx> z(x.begin(), x.end());
    fft(z);
    return z;
}

std::vector<double> irfft(const std::vector<cplx>& spectrum) {
    std::vector<cplx> z = spectrum;
    ifft(z);
    std::vector<double> out(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) out[i] = z[i].real();
    return out;
}

std::vector<cplx> dft_naive(const std::vector<cplx>& x) {
    const std::size_t n = x.size();
    std::vector<cplx> y(n, cplx(0, 0));
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * kPi * static_cast<double>(j * k % n) /
                               static_cast<double>(n);
            y[k] += x[j] * cplx(std::cos(ang), std::sin(ang));
        }
    return y;
}

} // namespace opmsim::fftx
