#include "fftx/fft.hpp"

#include <cmath>
#include <map>
#include <numbers>

#include "util/check.hpp"

namespace opmsim::fftx {

namespace {

constexpr double kPi = std::numbers::pi;

/// Stage-major forward twiddle table for size n: the len/2 roots
/// exp(-2*pi*i*k/len) of every stage len = 2, 4, …, n concatenated as
/// interleaved (re, im) doubles, so the butterfly loop reads them
/// contiguously.  Each root is computed directly from its own angle — the
/// multiplicative twiddle recurrence accumulates O(len * eps) phase
/// error, which was the accuracy bottleneck of the convolution engine on
/// badly scaled kernels.  Cached per size: the convolution plans hammer a
/// handful of dyadic sizes, so the trig cost is paid once.
const std::vector<double>& twiddle_table(std::size_t n) {
    thread_local std::map<std::size_t, std::vector<double>> cache;
    std::vector<double>& tw = cache[n];
    if (tw.empty()) {
        tw.reserve(2 * (n - 1));
        for (std::size_t len = 2; len <= n; len <<= 1)
            for (std::size_t k = 0; k < len / 2; ++k) {
                const double ang = -2.0 * kPi * static_cast<double>(k) /
                                   static_cast<double>(len);
                tw.push_back(std::cos(ang));
                tw.push_back(std::sin(ang));
            }
    }
    return tw;
}

/// Iterative radix-2 Cooley–Tukey, size must be a power of two.
/// sign = -1 forward, +1 inverse (no normalization here).
///
/// The butterflies run on restrict-qualified raw doubles
/// (std::complex<double> is layout-compatible with double[2]): with
/// std::complex element access the compiler must assume the twiddle reads
/// alias the data writes and reorders nothing, which costs ~8x throughput
/// on this loop.
void fft_pow2(std::vector<cplx>& xc, int sign) {
    const std::size_t n = xc.size();
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(xc[i], xc[j]);
    }
    double* __restrict__ x = reinterpret_cast<double*>(xc.data());
    const double* __restrict__ tw = twiddle_table(n).data();
    const double wsign = sign > 0 ? -1.0 : 1.0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t k = 0; k < half; ++k) {
                const double wr = tw[2 * k];
                const double wi = wsign * tw[2 * k + 1];
                const std::size_t p = 2 * (i + k);
                const std::size_t q = 2 * (i + k + half);
                const double ur = x[p], ui = x[p + 1];
                const double zr = x[q], zi = x[q + 1];
                const double vr = zr * wr - zi * wi;
                const double vi = zr * wi + zi * wr;
                x[p] = ur + vr;
                x[p + 1] = ui + vi;
                x[q] = ur - vr;
                x[q + 1] = ui - vi;
            }
        }
        tw += 2 * half;
    }
}

/// Bluestein chirp-z: arbitrary-size DFT via a power-of-two convolution.
void fft_bluestein(std::vector<cplx>& x, int sign) {
    const std::size_t n = x.size();
    const std::size_t m = next_pow2(2 * n - 1);

    // chirp[k] = exp(sign * i * pi * k^2 / n)
    std::vector<cplx> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n avoids precision loss for large k.
        const double e = static_cast<double>((k * k) % (2 * n));
        const double ang = sign * kPi * e / static_cast<double>(n);
        chirp[k] = cplx(std::cos(ang), std::sin(ang));
    }

    std::vector<cplx> a(m, cplx(0, 0)), b(m, cplx(0, 0));
    for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
    b[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);

    fft_pow2(a, -1);
    fft_pow2(b, -1);
    for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
    fft_pow2(a, +1);
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * inv_m * chirp[k];
}

void transform(std::vector<cplx>& x, int sign) {
    if (x.size() <= 1) return;
    if (is_pow2(x.size()))
        fft_pow2(x, sign);
    else
        fft_bluestein(x, sign);
}

} // namespace

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

void fft(std::vector<cplx>& x) { transform(x, -1); }

void ifft(std::vector<cplx>& x) {
    transform(x, +1);
    const double inv_n = 1.0 / static_cast<double>(x.size() == 0 ? 1 : x.size());
    for (auto& v : x) v *= inv_n;
}

void ifft_unnormalized(std::vector<cplx>& x) { transform(x, +1); }

std::vector<cplx> fft_real(const std::vector<double>& x) {
    std::vector<cplx> z(x.begin(), x.end());
    fft(z);
    return z;
}

std::vector<double> irfft(const std::vector<cplx>& spectrum) {
    std::vector<cplx> z = spectrum;
    ifft(z);
    std::vector<double> out(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) out[i] = z[i].real();
    return out;
}

std::vector<cplx> dft_naive(const std::vector<cplx>& x) {
    const std::size_t n = x.size();
    std::vector<cplx> y(n, cplx(0, 0));
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * kPi * static_cast<double>(j * k % n) /
                               static_cast<double>(n);
            y[k] += x[j] * cplx(std::cos(ang), std::sin(ang));
        }
    return y;
}

} // namespace opmsim::fftx
