#pragma once
/// \file fft.hpp
/// \brief Fast Fourier transforms (fused radix-4 Cooley–Tukey + Bluestein).
///
/// The FFT is the substrate of the paper's frequency-domain baseline
/// ("FFT-1"/"FFT-2" in Table I): the input is transformed to the frequency
/// domain, the fractional pencil (jw)^a E - A is solved per sample, and the
/// result is transformed back.  Arbitrary (non power-of-two) lengths — the
/// paper uses 100 samples — are handled by Bluestein's chirp-z algorithm.

#include <complex>
#include <vector>

namespace opmsim::fftx {

using cplx = std::complex<double>;

/// In-place forward DFT: X[k] = sum_n x[n] exp(-2*pi*i*n*k/N).
/// Power-of-two sizes use iterative radix-2; other sizes use Bluestein.
void fft(std::vector<cplx>& x);

/// In-place inverse DFT (includes the 1/N normalization).
void ifft(std::vector<cplx>& x);

/// In-place inverse DFT without the 1/N normalization — for callers that
/// fold the scale into precomputed data (e.g. a cached kernel spectrum),
/// saving a pass over the buffer per transform.
void ifft_unnormalized(std::vector<cplx>& x);

/// Forward DFT of a real signal (convenience wrapper).
std::vector<cplx> fft_real(const std::vector<double>& x);

/// Inverse of fft_real: recover the real signal from its full-length
/// spectrum (includes the 1/N normalization; the imaginary parts of the
/// inverse transform are discarded).
std::vector<double> irfft(const std::vector<cplx>& spectrum);

/// Naive O(N^2) DFT — test oracle only.
std::vector<cplx> dft_naive(const std::vector<cplx>& x);

/// Power-of-two DFT forced onto plain radix-2 butterflies (sign = -1
/// forward, +1 inverse without normalization).  The production kernel
/// runs fused radix-4 passes; this is the reference it is pinned against
/// in tests and compared with in bench_kernels.  Throws unless
/// is_pow2(x.size()).
void fft_pow2_radix2(std::vector<cplx>& x, int sign);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

} // namespace opmsim::fftx
