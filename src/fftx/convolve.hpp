#pragma once
/// \file convolve.hpp
/// \brief Batched real-input FFT convolution with cached kernel spectra.
///
/// The fractional OPM sweeps and the Grünwald–Letnikov stepper reduce to
/// causal convolutions of the solved state columns against a fixed Toeplitz
/// coefficient row.  This module provides the FFT substrate for evaluating
/// those convolutions fast: a RealConvPlan caches the zero-padded kernel
/// spectrum once and then convolves any number of input channels against
/// it.  Channels are processed two at a time, packed into the real and
/// imaginary lanes of a single complex transform — exact by linearity,
/// because the kernel spectrum multiplies both lanes identically — which
/// halves the FFT count for the multi-channel state convolutions.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fftx/fft.hpp"
#include "util/annotations.hpp"

namespace opmsim::fftx {

/// Full linear convolution y[t] = sum_u a[u] b[t-u], length na + nb - 1.
/// Uses FFT above a small size threshold, direct multiplication below it.
std::vector<double> convolve_real(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Reusable plan for linear convolution of real signals against one fixed
/// real kernel.  The FFT size is the smallest power of two holding the
/// full linear convolution (kernel length + max input length - 1), so no
/// circular aliasing occurs anywhere in the output.
class RealConvPlan {
public:
    /// \param kernel  kernel taps k[0..nk-1]
    /// \param nk      kernel length (>= 1)
    /// \param max_nx  largest input length this plan will be asked to
    ///                convolve (>= 1)
    RealConvPlan(const double* kernel, std::size_t nk, std::size_t max_nx);

    /// y[t] += (x * k)[t0 + t] for t in [0, nt).  Requires nx <= max_nx
    /// and t0 + nt <= fft_size().
    void accumulate(const double* x, std::size_t nx, double* y,
                    std::size_t t0, std::size_t nt);

    /// Two-channel packed variant: ya[t] += (xa * k)[t0 + t] and
    /// yb[t] += (xb * k)[t0 + t] with a single complex FFT pair.
    void accumulate2(const double* xa, const double* xb, std::size_t nx,
                     double* ya, double* yb, std::size_t t0, std::size_t nt);

    /// Split-phase API for batched multi-kernel convolution: forward()
    /// transforms a packed channel pair once into `spec`, and
    /// accumulate_spectrum() convolves that spectrum against THIS plan's
    /// kernel.  A spectrum computed by any plan is valid for every plan of
    /// the same fft_size(), so K same-size plans cost one forward + K
    /// inverse transforms per input block instead of K of each — the
    /// multi-term history engine's batching primitive.  `xb`/`yb` may be
    /// null for a single channel.
    void forward(const double* xa, const double* xb, std::size_t nx,
                 std::vector<cplx>& spec) const;
    void accumulate_spectrum(const std::vector<cplx>& spec, double* ya,
                             double* yb, std::size_t t0, std::size_t nt);

    [[nodiscard]] std::size_t fft_size() const { return n_; }
    [[nodiscard]] std::size_t kernel_size() const { return nk_; }

private:
    void transform_and_extract(std::size_t nx) REQUIRES(mutex_);
    void multiply_and_invert(const cplx* spec) REQUIRES(mutex_);

    std::size_t nk_ = 0;      ///< kernel length
    std::size_t max_nx_ = 0;  ///< largest admissible input length
    std::size_t n_ = 0;       ///< FFT size (power of two)
    std::vector<cplx> kspec_; ///< cached kernel spectrum, length n_ (immutable after ctor)
    util::Mutex mutex_;       ///< serializes buf_ (plans are shared via the cache)
    /// scratch transform buffer, length n_.  The constructor sizes it
    /// before the plan is published, so only the locked accumulate paths
    /// ever touch it afterwards.
    std::vector<cplx> buf_ GUARDED_BY(mutex_);
};

/// Cross-run cache of RealConvPlans, keyed by (kernel taps, max_nx).
///
/// Plan construction is the O(len log len) kernel-spectrum transform; the
/// history engines build one plan per dyadic level per coefficient row, so
/// re-running the same simulation (cross-method comparisons, batched
/// scenarios) rebuilds identical plans from identical kernels.  This cache
/// memoizes them: lookups hash the kernel bytes and verify tap-for-tap
/// against the stored copy, so a collision can never return a wrong plan.
/// max_nx must match exactly — it fixes the FFT size, and a larger plan
/// would round differently (the cache guarantees cached runs stay
/// bit-identical to uncached ones).
///
/// Lookups/insertions are serialized by an internal mutex, and the plans
/// themselves serialize their scratch buffer, so a shared cache (and a
/// shared plan) is safe across the Engine's run_batch worker threads.
/// Beyond `max_plans` the most
/// recent insertion is replaced (not the oldest), so cyclic replays
/// longer than the cap keep the resident entries hitting — the same
/// eviction policy as la::FactorCache.
class ConvPlanCache {
public:
    explicit ConvPlanCache(std::size_t max_plans = 128)
        : max_plans_(max_plans) {}

    ConvPlanCache(const ConvPlanCache&) = delete;
    ConvPlanCache& operator=(const ConvPlanCache&) = delete;

    /// Fetch (or build and store) a plan for this exact kernel.
    std::shared_ptr<RealConvPlan> get(const double* kernel, std::size_t nk,
                                      std::size_t max_nx);

    [[nodiscard]] std::size_t size() const {
        const util::MutexLock lock(mutex_);
        return entries_.size();
    }
    [[nodiscard]] long hits() const {
        const util::MutexLock lock(mutex_);
        return hits_;
    }
    [[nodiscard]] long misses() const {
        const util::MutexLock lock(mutex_);
        return misses_;
    }

    void clear() {
        const util::MutexLock lock(mutex_);
        entries_.clear();
    }

private:
    struct Entry {
        std::uint64_t hash = 0;
        std::vector<double> kernel;
        std::size_t max_nx = 0;
        std::shared_ptr<RealConvPlan> plan;
    };

    /// mutable: the stats getters are const but must lock (an
    /// unsynchronized size()/hits() read racing get()'s insert is UB).
    mutable util::Mutex mutex_;
    std::size_t max_plans_;
    /// insertion order; back() is replaced when full
    std::vector<Entry> entries_ GUARDED_BY(mutex_);
    long hits_ GUARDED_BY(mutex_) = 0;
    long misses_ GUARDED_BY(mutex_) = 0;
};

} // namespace opmsim::fftx
