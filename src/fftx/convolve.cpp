#include "fftx/convolve.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace opmsim::fftx {

std::vector<double> convolve_real(const std::vector<double>& a,
                                  const std::vector<double>& b) {
    if (a.empty() || b.empty()) return {};
    const std::size_t ny = a.size() + b.size() - 1;

    // Direct path: FFT overhead dominates for tiny operands.
    if (std::min(a.size(), b.size()) < 16 || ny < 64) {
        std::vector<double> y(ny, 0.0);
        for (std::size_t i = 0; i < a.size(); ++i)
            for (std::size_t j = 0; j < b.size(); ++j) y[i + j] += a[i] * b[j];
        return y;
    }

    RealConvPlan plan(b.data(), b.size(), a.size());
    std::vector<double> y(ny, 0.0);
    plan.accumulate(a.data(), a.size(), y.data(), 0, ny);
    return y;
}

RealConvPlan::RealConvPlan(const double* kernel, std::size_t nk,
                           std::size_t max_nx)
    : nk_(nk), max_nx_(max_nx) {
    OPMSIM_REQUIRE(nk >= 1 && max_nx >= 1, "RealConvPlan: empty operands");
    n_ = next_pow2(nk + max_nx - 1);
    kspec_.assign(n_, cplx(0.0, 0.0));
    for (std::size_t i = 0; i < nk; ++i) kspec_[i] = cplx(kernel[i], 0.0);
    fft(kspec_);
    // Fold the inverse-transform normalization into the cached spectrum so
    // each convolution can use the unnormalized inverse FFT.
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (auto& v : kspec_) v *= inv_n;
    buf_.resize(n_);
}

/// buf_ = ifft_unnormalized(spec .* kspec_).  The one place the kernel
/// spectrum is applied — both the fused accumulate paths and the
/// split-phase accumulate_spectrum go through it, so they stay
/// numerically identical.  `spec` may alias buf_ (element-wise).
void RealConvPlan::multiply_and_invert(const cplx* spec) {
    for (std::size_t k = 0; k < n_; ++k) {
        // Explicit complex product: keeps the hot loop free of __mulsc3.
        const double ar = spec[k].real(), ai = spec[k].imag();
        const double br = kspec_[k].real(), bi = kspec_[k].imag();
        buf_[k] = cplx(ar * br - ai * bi, ar * bi + ai * br);
    }
    ifft_unnormalized(buf_);
}

void RealConvPlan::transform_and_extract(std::size_t nx) {
    std::fill(buf_.begin() + static_cast<std::ptrdiff_t>(nx), buf_.end(),
              cplx(0.0, 0.0));
    fft(buf_);
    multiply_and_invert(buf_.data());
}

void RealConvPlan::accumulate(const double* x, std::size_t nx, double* y,
                              std::size_t t0, std::size_t nt) {
    OPMSIM_ENSURE(nx <= max_nx_, "RealConvPlan: input exceeds planned length");
    OPMSIM_ENSURE(t0 + nt <= n_, "RealConvPlan: output range exceeds FFT size");
    const util::MutexLock lock(mutex_);
    for (std::size_t u = 0; u < nx; ++u) buf_[u] = cplx(x[u], 0.0);
    transform_and_extract(nx);
    for (std::size_t t = 0; t < nt; ++t) y[t] += buf_[t0 + t].real();
}

void RealConvPlan::forward(const double* xa, const double* xb, std::size_t nx,
                           std::vector<cplx>& spec) const {
    OPMSIM_ENSURE(nx <= max_nx_, "RealConvPlan: input exceeds planned length");
    spec.assign(n_, cplx(0.0, 0.0));
    for (std::size_t u = 0; u < nx; ++u)
        spec[u] = cplx(xa[u], xb != nullptr ? xb[u] : 0.0);
    fft(spec);
}

void RealConvPlan::accumulate_spectrum(const std::vector<cplx>& spec,
                                       double* ya, double* yb, std::size_t t0,
                                       std::size_t nt) {
    OPMSIM_ENSURE(spec.size() == n_, "RealConvPlan: spectrum size mismatch");
    OPMSIM_ENSURE(t0 + nt <= n_, "RealConvPlan: output range exceeds FFT size");
    const util::MutexLock lock(mutex_);
    multiply_and_invert(spec.data());
    for (std::size_t t = 0; t < nt; ++t) {
        ya[t] += buf_[t0 + t].real();
        if (yb != nullptr) yb[t] += buf_[t0 + t].imag();
    }
}

std::shared_ptr<RealConvPlan> ConvPlanCache::get(const double* kernel,
                                                 std::size_t nk,
                                                 std::size_t max_nx) {
    // FNV-1a over (nk, max_nx, kernel bytes), verified exactly below.
    std::uint64_t h = fnv1a(&nk, sizeof nk);
    h = fnv1a(&max_nx, sizeof max_nx, h);
    h = fnv1a(kernel, nk * sizeof(double), h);

    {
        const util::MutexLock lock(mutex_);
        for (const Entry& e : entries_) {
            if (e.hash != h || e.max_nx != max_nx || e.kernel.size() != nk) continue;
            if (!std::equal(kernel, kernel + nk, e.kernel.begin())) continue;
            ++hits_;
            return e.plan;
        }
        ++misses_;
    }

    // Build OUTSIDE the lock — the kernel-spectrum FFT is the expensive
    // step, and holding the mutex here would serialize run_batch workers
    // whose groups plan different kernels (same pattern as
    // la::FactorCache::factor).  Two threads missing on the same key may
    // both build; the plans are identical, so either copy may be cached.
    Entry e;
    e.hash = h;
    e.kernel.assign(kernel, kernel + nk);
    e.max_nx = max_nx;
    e.plan = std::make_shared<RealConvPlan>(kernel, nk, max_nx);

    const util::MutexLock lock(mutex_);
    // Replace-newest eviction, same policy (and rationale) as
    // la::FactorCache: a warm run replaying more plans than the cap keeps
    // hitting the resident entries instead of treadmilling to zero.
    if (entries_.size() >= max_plans_ && !entries_.empty()) entries_.pop_back();
    entries_.push_back(std::move(e));
    return entries_.back().plan;
}

void RealConvPlan::accumulate2(const double* xa, const double* xb,
                               std::size_t nx, double* ya, double* yb,
                               std::size_t t0, std::size_t nt) {
    OPMSIM_ENSURE(nx <= max_nx_, "RealConvPlan: input exceeds planned length");
    OPMSIM_ENSURE(t0 + nt <= n_, "RealConvPlan: output range exceeds FFT size");
    const util::MutexLock lock(mutex_);
    for (std::size_t u = 0; u < nx; ++u) buf_[u] = cplx(xa[u], xb[u]);
    transform_and_extract(nx);
    for (std::size_t t = 0; t < nt; ++t) {
        ya[t] += buf_[t0 + t].real();
        yb[t] += buf_[t0 + t].imag();
    }
}

} // namespace opmsim::fftx
