/// \file opmsimd.cpp
/// \brief The opmsim scenario daemon.
///
/// Runs an api::Engine as a service: clients connect over a Unix-domain
/// (default) or loopback TCP socket, register systems once, and submit
/// scenarios that the dispatcher coalesces into multi-RHS micro-batches
/// (docs/service.md).  Warm caches can be snapshotted to disk by clients
/// (save_caches/load_caches) — and, with --snapshot-dir, automatically on
/// a graceful drain — so a restarted daemon answers its first request
/// with zero fill-reducing orderings and zero SoE refits.
///
/// Usage:
///     opmsimd --socket /tmp/opmsim.sock [--window 0.001] [--max-batch 64]
///             [--workers 1] [--cache-capacity 0] [--max-queue 4096]
///             [--max-pending-per-conn 0] [--write-timeout 30]
///             [--snapshot-dir DIR]
///     opmsimd --port 9178          # loopback TCP instead (0 = ephemeral)
///
/// The daemon runs until a client sends shutdown or it receives a signal:
/// SIGINT / SIGTERM begin a GRACEFUL drain — the listener closes, new
/// submits are shed with `unavailable`, in-flight batches finish, the
/// warm caches are snapshotted to --snapshot-dir (when set), and only
/// then does the process exit.  A second signal force-stops.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "svc/server.hpp"

namespace {
opmsim::svc::Server* g_server = nullptr;
volatile std::sig_atomic_t g_signals_seen = 0;

void handle_signal(int) {
    // First signal: graceful drain.  begin_drain() is nonblocking and only
    // touches mutex/cv state already built for cross-thread use — the
    // blocking epilogue (wait + snapshot + stop) runs on the main thread
    // below, never in signal context.  Second signal: the operator is
    // insisting; force-stop without waiting for in-flight work.
    if (g_server == nullptr) return;
    if (++g_signals_seen == 1)
        g_server->begin_drain();
    else
        g_server->stop();
}
} // namespace

int main(int argc, char** argv) {
    opmsim::svc::ServerOptions opt;
    opt.socket_path = "/tmp/opmsim.sock";
    bool tcp = false;
    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char* name) {
            if (std::strcmp(argv[i], name) != 0) return (const char*)nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "opmsimd: %s needs a value\n", name);
                std::exit(2);
            }
            return (const char*)argv[++i];
        };
        if (const char* v = arg("--socket")) {
            opt.socket_path = v;
            tcp = false;
        } else if (const char* v = arg("--port")) {
            opt.tcp_port = std::atoi(v);
            opt.socket_path.clear();
            tcp = true;
        } else if (const char* v = arg("--window")) {
            opt.batch_window = std::atof(v);
        } else if (const char* v = arg("--max-batch")) {
            opt.max_batch = std::atoi(v);
        } else if (const char* v = arg("--workers")) {
            opt.batch_workers = std::atoi(v);
        } else if (const char* v = arg("--cache-capacity")) {
            opt.cache_capacity = static_cast<std::size_t>(std::atol(v));
        } else if (const char* v = arg("--max-queue")) {
            opt.max_queue = static_cast<std::size_t>(std::atol(v));
        } else if (const char* v = arg("--max-pending-per-conn")) {
            opt.max_pending_per_conn = static_cast<std::size_t>(std::atol(v));
        } else if (const char* v = arg("--write-timeout")) {
            opt.write_timeout = std::atof(v);
        } else if (const char* v = arg("--snapshot-dir")) {
            opt.snapshot_dir = v;
        } else {
            std::fprintf(stderr,
                         "opmsimd: unknown option %s\n"
                         "usage: opmsimd [--socket PATH | --port N] "
                         "[--window SEC] [--max-batch N] [--workers N] "
                         "[--cache-capacity N] [--max-queue N] "
                         "[--max-pending-per-conn N] [--write-timeout SEC] "
                         "[--snapshot-dir DIR]\n",
                         argv[i]);
            return 2;
        }
    }

    opmsim::svc::Server server(opt);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "opmsimd: %s\n", e.what());
        return 1;
    }
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (tcp)
        std::printf("opmsimd: listening on 127.0.0.1:%d\n", server.port());
    else
        std::printf("opmsimd: listening on %s\n", server.socket_path().c_str());
    std::fflush(stdout);

    // Returns on a client shutdown request, a completed drain (signal), or
    // a force-stop; stop() is idempotent so the epilogue is one path.
    server.wait_for_shutdown();
    server.stop();

    const opmsim::svc::ServiceStats s = server.stats();
    std::printf("opmsimd: served %llu scenarios in %llu batches "
                "(%llu coalesced, largest %llu); "
                "shed %llu, deadline-expired %llu, drains %llu, "
                "reconnects seen %llu; bye\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.largest_batch),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.deadline_expired),
                static_cast<unsigned long long>(s.drains),
                static_cast<unsigned long long>(s.reconnects_seen));
    return 0;
}
