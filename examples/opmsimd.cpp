/// \file opmsimd.cpp
/// \brief The opmsim scenario daemon.
///
/// Runs an api::Engine as a service: clients connect over a Unix-domain
/// (default) or loopback TCP socket, register systems once, and submit
/// scenarios that the dispatcher coalesces into multi-RHS micro-batches
/// (docs/service.md).  Warm caches can be snapshotted to disk by clients
/// (save_caches/load_caches), so a restarted daemon answers its first
/// request with zero fill-reducing orderings and zero SoE refits.
///
/// Usage:
///     opmsimd --socket /tmp/opmsim.sock [--window 0.001] [--max-batch 64]
///             [--workers 1] [--cache-capacity 0]
///     opmsimd --port 9178          # loopback TCP instead (0 = ephemeral)
///
/// The daemon runs until a client sends shutdown or it receives SIGINT /
/// SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "svc/server.hpp"

namespace {
opmsim::svc::Server* g_server = nullptr;

void handle_signal(int) {
    // async-signal-safe enough for a demo daemon: stop() only touches
    // sockets and condition variables already built for cross-thread use.
    if (g_server != nullptr) g_server->stop();
}
} // namespace

int main(int argc, char** argv) {
    opmsim::svc::ServerOptions opt;
    opt.socket_path = "/tmp/opmsim.sock";
    bool tcp = false;
    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char* name) {
            if (std::strcmp(argv[i], name) != 0) return (const char*)nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "opmsimd: %s needs a value\n", name);
                std::exit(2);
            }
            return (const char*)argv[++i];
        };
        if (const char* v = arg("--socket")) {
            opt.socket_path = v;
            tcp = false;
        } else if (const char* v = arg("--port")) {
            opt.tcp_port = std::atoi(v);
            opt.socket_path.clear();
            tcp = true;
        } else if (const char* v = arg("--window")) {
            opt.batch_window = std::atof(v);
        } else if (const char* v = arg("--max-batch")) {
            opt.max_batch = std::atoi(v);
        } else if (const char* v = arg("--workers")) {
            opt.batch_workers = std::atoi(v);
        } else if (const char* v = arg("--cache-capacity")) {
            opt.cache_capacity = static_cast<std::size_t>(std::atol(v));
        } else {
            std::fprintf(stderr,
                         "opmsimd: unknown option %s\n"
                         "usage: opmsimd [--socket PATH | --port N] "
                         "[--window SEC] [--max-batch N] [--workers N] "
                         "[--cache-capacity N]\n",
                         argv[i]);
            return 2;
        }
    }

    opmsim::svc::Server server(opt);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "opmsimd: %s\n", e.what());
        return 1;
    }
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (tcp)
        std::printf("opmsimd: listening on 127.0.0.1:%d\n", server.port());
    else
        std::printf("opmsimd: listening on %s\n", server.socket_path().c_str());
    std::fflush(stdout);

    server.wait_for_shutdown();
    server.stop();

    const opmsim::svc::ServiceStats s = server.stats();
    std::printf("opmsimd: served %llu scenarios in %llu batches "
                "(%llu coalesced, largest %llu); bye\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.largest_batch));
    return 0;
}
