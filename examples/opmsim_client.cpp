/// \file opmsim_client.cpp
/// \brief Minimal client for the opmsim scenario daemon (docs/service.md).
///
/// Connects to a running opmsimd, registers a small RC ladder, submits a
/// step-response scenario for each of the five methods plus a pipelined
/// burst that exercises the daemon's micro-batching, prints a summary and
/// (with --shutdown) stops the daemon.
///
/// Usage:
///     opmsim_client --socket /tmp/opmsim.sock [--shutdown]
///     opmsim_client --port 9178 [--shutdown]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "svc/client.hpp"

using namespace opmsim;

namespace {

/// n-stage RC ladder driven at node 0: C v' = G v + b u.
opm::DescriptorSystem rc_ladder(la::index_t n) {
    la::Triplets e(n, n), a(n, n), b(n, 1);
    for (la::index_t i = 0; i < n; ++i) {
        e.add(i, i, 1e-9);  // 1 nF to ground
        double g = 0.0;
        if (i > 0) {
            a.add(i, i - 1, 1e-3);  // 1 kOhm to the previous node
            g += 1e-3;
        }
        if (i + 1 < n) {
            a.add(i, i + 1, 1e-3);
            g += 1e-3;
        }
        a.add(i, i, -(g + (i == 0 ? 1e-3 : 0.0)));
    }
    b.add(0, 0, 1e-3);  // source resistor into node 0
    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    return sys;
}

} // namespace

int main(int argc, char** argv) {
    std::string socket_path = "/tmp/opmsim.sock";
    int port = 0;
    bool shutdown = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = std::atoi(argv[++i]);
            socket_path.clear();
        } else if (std::strcmp(argv[i], "--shutdown") == 0) {
            shutdown = true;
        } else {
            std::fprintf(stderr,
                         "usage: opmsim_client [--socket PATH | --port N] "
                         "[--shutdown]\n");
            return 2;
        }
    }

    svc::Client client;
    try {
        if (!socket_path.empty())
            client.connect_unix(socket_path);
        else
            client.connect_tcp(port);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "opmsim_client: %s (is opmsimd running?)\n",
                     e.what());
        return 1;
    }
    std::printf("connected (protocol 1.%u)\n",
                static_cast<unsigned>(client.negotiated_minor()));

    const std::uint64_t h = client.register_system(rc_ladder(32));

    // One scenario per method family on the shared handle.
    svc::WireScenario sc;
    sc.sources = {svc::SourceSpec::step(1.0)};
    sc.t_end = 1e-5;
    sc.steps = 256;

    const struct {
        const char* name;
        api::MethodConfig config;
    } runs[] = {
        {"opm", opm::OpmOptions{}},
        {"adaptive", opm::AdaptiveOptions{}},
        {"transient", transient::TransientOptions{}},
        {"grunwald", [] {
             transient::GrunwaldOptions o;
             o.alpha = 1.0;
             return o;
         }()},
    };
    for (const auto& run : runs) {
        sc.config = run.config;
        const api::SolveResult res = client.submit(h, sc);
        if (!res.status.ok()) {
            std::fprintf(stderr, "%-9s FAILED: %s\n", run.name,
                         res.status.message.c_str());
            return 1;
        }
        std::printf("%-9s %3zu outputs, %4zu grid points, "
                    "orderings=%d factor_cache_hits=%d\n",
                    run.name, res.outputs.size(), res.grid.size(),
                    res.diag.orderings, res.diag.factor_cache_hits);
    }

    // A pipelined burst of batch-compatible scenarios: the daemon's
    // dispatcher coalesces these into one multi-RHS sweep.
    sc.config = opm::OpmOptions{};
    std::vector<std::future<api::SolveResult>> burst;
    for (int k = 0; k < 8; ++k) {
        sc.sources = {svc::SourceSpec::sine(1.0, 1e5 * (k + 1))};
        burst.push_back(client.submit_async(h, sc));
    }
    for (auto& f : burst) {
        const api::SolveResult res = f.get();
        if (!res.status.ok()) {
            std::fprintf(stderr, "burst member FAILED: %s\n",
                         res.status.message.c_str());
            return 1;
        }
    }

    const svc::ServiceStats stats = client.stats();
    std::printf("daemon stats: %llu scenarios, %llu batches, "
                "%llu coalesced, largest batch %llu\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.largest_batch));

    client.remove_system(h);
    if (shutdown) client.shutdown_server();
    client.close();
    return 0;
}
