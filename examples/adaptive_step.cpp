/// \file adaptive_step.cpp
/// \brief Example: adaptive time-stepping OPM on a stiff circuit
///        (paper §III-B), through the Engine facade.
///
/// A voltage regulator's output network has a fast 100 ps transient at
/// power-up and then drifts slowly for tens of nanoseconds, with a load
/// spike in the middle.  Uniform stepping pays the 100 ps resolution over
/// the whole window; the adaptive controller refines only where needed.
/// The step-size profile is printed as a crude console plot.  A second
/// run on the warm handle shows the cross-run factor cache: every pencil
/// the controller re-encounters is served without refactoring.

#include <algorithm>
#include <cstdio>

#include "api/engine.hpp"
#include "util/timer.hpp"

using namespace opmsim;

int main() {
    // Two-pole output network: tau1 = 100 ps, tau2 = 20 ns.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd::identity(2);
    sys.a = la::Matrixd{{-1e10, 0.0}, {2e7, -5e7}};
    sys.b = la::Matrixd{{1e10, 5e9}, {0.0, 0.0}};

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(sys);

    api::Scenario sc;
    sc.t_end = 60e-9;
    sc.sources = {
        wave::step(1.0),                                   // power-up
        wave::pulse(0.5, 30e-9, 0.1e-9, 0.8e-9, 0.1e-9)};  // load spike

    opm::AdaptiveOptions opt;
    opt.tol = 1e-4;
    opt.h_init = 5e-12;
    opt.h_max = sc.t_end / 10.0;
    sc.config = opt;

    WallTimer t;
    const api::SolveResult res = engine.run(h, sc);
    const double ms_adaptive = t.elapsed_ms();

    double hmin = 1e300, hmax = 0;
    for (double hs : res.steps) {
        hmin = std::min(hmin, hs);
        hmax = std::max(hmax, hs);
    }
    const la::index_t uniform_m = static_cast<la::index_t>(sc.t_end / hmin) + 1;

    std::printf("adaptive OPM: %ld accepted steps, %d pencil factorizations "
                "(%d ordering(s)), %.1f ms\n",
                static_cast<long>(res.steps.size()), res.diag.factorizations,
                res.diag.orderings, ms_adaptive);
    std::printf("step range: %.3g ps .. %.3g ps  (uniform at h_min would "
                "need m = %ld)\n\n",
                hmin * 1e12, hmax * 1e12, static_cast<long>(uniform_m));

    // Console plot: log2(step size) over time.
    std::printf("step-size profile (each row: time, step, bar ~ log2 h):\n");
    const std::size_t rows = 24;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t j = r * res.steps.size() / rows;
        const double tj = res.grid[j];
        const double hj = res.steps[j];
        const int bars =
            static_cast<int>(3.0 * std::log2(hj / hmin)) + 1;
        std::printf("%7.2f ns %9.3g ps |", tj * 1e9, hj * 1e12);
        for (int b = 0; b < std::min(bars, 60); ++b) std::putchar('#');
        std::putchar('\n');
    }

    // Warm rerun: the same step sequence re-emerges, and every pencil is
    // served from the handle's factor cache.
    t.reset();
    const api::SolveResult warm = engine.run(h, sc);
    std::printf("\nwarm rerun: %.1f ms, %d fresh factorizations, %d served "
                "from cache\n", t.elapsed_ms(), warm.diag.factorizations,
                warm.diag.factor_cache_hits);

    // DC gain of the slow pole: (2e7 / 5e7) * x1 = 0.4 V, still settling
    // at t_end (tau2 = 20 ns).
    std::printf("regulator output at t_end: %.4f V (expected ~0.4 V from "
                "the pole DC gains)\n", res.outputs[1].at(sc.t_end * 0.99));
    return 0;
}
