/// \file supercapacitor.cpp
/// \brief Example: fractional-order supercapacitor charging.
///
/// Supercapacitors are the textbook constant-phase-element (CPE) device:
/// their impedance is 1/(C s^alpha) with alpha ~ 0.5-0.9, not an ideal
/// capacitor.  This example builds the charging circuit with the netlist
/// CPE element, lets the *fractional MNA builder* assemble
/// E d^alpha x = A x + B u automatically, simulates with OPM through the
/// Engine facade, and shows the signature fractional behaviour: fast
/// early charge, then a long algebraic tail (compared against the exact
/// Mittag-Leffler solution).

#include <cmath>
#include <cstdio>

#include "api/engine.hpp"
#include "circuit/mna.hpp"
#include "opm/mittag_leffler.hpp"

using namespace opmsim;

int main() {
    const double alpha = 0.6;  // dispersion coefficient of the device
    const double r = 10.0;     // series resistance [ohm]
    const double c = 0.05;     // CPE coefficient [F s^{alpha-1}]

    // charger --- R --- (+) supercap CPE (-) --- gnd
    circuit::Netlist nl("supercap charger");
    const la::index_t in = nl.node("charger");
    const la::index_t cap = nl.node("cap");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, cap, r);
    nl.cpe("Csc", cap, 0, c, alpha);

    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_fractional_mna(nl, alpha, &lay);
    sys.c = circuit::node_voltage_selector(lay, {cap});

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(std::move(sys));

    api::Scenario sc;
    sc.sources = {wave::step(1.0)};
    sc.t_end = 20.0;
    sc.steps = 2000;
    opm::OpmOptions opt;
    opt.alpha = alpha;
    sc.config = opt;
    const api::SolveResult res = engine.run(h, sc);

    // Closed form: v(t) = 1 - E_alpha(-(t^alpha)/(R C)).
    std::printf("charging a %.2f F*s^%.1f supercapacitor through %.0f ohm\n\n",
                c, alpha - 1.0, r);
    std::printf("%10s %14s %16s %12s\n", "t [s]", "v_cap OPM", "Mittag-Leffler",
                "|error|");
    double max_err = 0;
    for (double t : {0.5, 1.0, 2.0, 5.0, 10.0, 19.0}) {
        const double sim = res.outputs[0].at(t);
        const double exact =
            1.0 - opm::mittag_leffler(alpha, -std::pow(t, alpha) / (r * c));
        max_err = std::max(max_err, std::abs(sim - exact));
        std::printf("%10.2f %14.6f %16.6f %12.2e\n", t, sim, exact,
                    std::abs(sim - exact));
    }

    // Contrast with the exponential an ideal capacitor would give.
    const double v_frac = res.outputs[0].at(19.0);
    const double v_ideal = 1.0 - std::exp(-19.0 / (r * c));
    std::printf("\nat t=19s: fractional cap at %.3f V, an ideal RC would be "
                "at %.6f V\n", v_frac, v_ideal);
    std::printf("the slow algebraic tail (~t^-%.1f) is the fractional "
                "signature; max error vs closed form: %.2e\n", alpha, max_err);
    return max_err < 1e-2 ? 0 : 1;
}
