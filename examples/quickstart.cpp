/// \file quickstart.cpp
/// \brief Minimal opmsim tour: build an RC low-pass with the netlist API,
///        simulate it with OPM, and compare against the analytic response.
///
/// Circuit: u(t) --[R=1k]--+--[C=1uF]-- gnd, step input.
/// Analytic: v(t) = 1 - exp(-t/RC), tau = 1 ms.

#include <cmath>
#include <cstdio>

#include "circuit/mna.hpp"
#include "opm/solver.hpp"

using namespace opmsim;

int main() {
    // 1. Describe the circuit.
    circuit::Netlist nl("rc lowpass");
    const la::index_t in = nl.node("in");
    const la::index_t out = nl.node("out");
    nl.vsource("V1", in, 0, /*source_id=*/0);
    nl.resistor("R1", in, out, 1e3);
    nl.capacitor("C1", out, 0, 1e-6);

    // 2. Assemble the MNA descriptor system E x' = A x + B u (a DAE: the
    //    voltage source contributes an algebraic row).
    circuit::MnaLayout layout;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &layout);
    sys.c = circuit::node_voltage_selector(layout, {out});

    // 3. Simulate 5 time constants with 200 OPM intervals.
    const double tau = 1e-3;
    const double t_end = 5.0 * tau;
    opm::OpmResult res =
        opm::simulate_opm(sys, {wave::step(1.0)}, t_end, /*m=*/200);

    // 4. Print a few samples against the closed form.
    std::printf("%12s %14s %14s %12s\n", "t [ms]", "v_opm [V]", "v_exact [V]",
                "error");
    const wave::Waveform& v = res.outputs.front();
    double max_err = 0.0;
    for (int k = 1; k <= 10; ++k) {
        const double t = t_end * k / 10.0 - t_end / 400.0;  // interval midpoints
        const double sim = v.at(t);
        const double exact = 1.0 - std::exp(-t / tau);
        max_err = std::max(max_err, std::abs(sim - exact));
        std::printf("%12.3f %14.8f %14.8f %12.2e\n", t * 1e3, sim, exact,
                    std::abs(sim - exact));
    }
    std::printf("\nmax sampled error: %.2e  (OPM with m=200 ~ trapezoidal)\n",
                max_err);
    return max_err < 1e-4 ? 0 : 1;
}
