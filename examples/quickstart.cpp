/// \file quickstart.cpp
/// \brief Minimal opmsim tour: build an RC low-pass with the netlist API,
///        register it with the Engine facade, and simulate it two ways —
///        OPM and a classic trapezoidal stepper — through one interface.
///
/// Circuit: u(t) --[R=1k]--+--[C=1uF]-- gnd, step input.
/// Analytic: v(t) = 1 - exp(-t/RC), tau = 1 ms.
///
/// The Engine (api/engine.hpp) is the recommended entry point: register a
/// system once, then run any Scenario against it.  The per-method options
/// structs select the solver path, results come back in one shape, and
/// repeated runs on the same handle reuse the sparse-analysis / FFT-plan
/// caches automatically (see docs/api.md for the caching contract).

#include <cmath>
#include <cstdio>

#include "api/engine.hpp"
#include "circuit/mna.hpp"

using namespace opmsim;

int main() {
    // 1. Describe the circuit.
    circuit::Netlist nl("rc lowpass");
    const la::index_t in = nl.node("in");
    const la::index_t out = nl.node("out");
    nl.vsource("V1", in, 0, /*source_id=*/0);
    nl.resistor("R1", in, out, 1e3);
    nl.capacitor("C1", out, 0, 1e-6);

    // 2. Assemble the MNA descriptor system E x' = A x + B u (a DAE: the
    //    voltage source contributes an algebraic row) and register it.
    circuit::MnaLayout layout;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &layout);
    sys.c = circuit::node_voltage_selector(layout, {out});

    api::Engine engine;
    const api::SystemHandle rc = engine.add_system(std::move(sys));

    // 3. Simulate 5 time constants with 200 intervals.  The default
    //    Scenario config is plain OPM; swapping the config struct swaps
    //    the solver path without touching anything else.
    const double tau = 1e-3;
    api::Scenario sc;
    sc.sources = {wave::step(1.0)};
    sc.t_end = 5.0 * tau;
    sc.steps = 200;
    const api::SolveResult res = engine.run(rc, sc);

    sc.config = transient::TransientOptions{};  // trapezoidal baseline
    const api::SolveResult trap = engine.run(rc, sc);

    // 4. Print a few samples against the closed form.
    std::printf("%12s %14s %14s %12s\n", "t [ms]", "v_opm [V]", "v_exact [V]",
                "error");
    const wave::Waveform& v = res.outputs.front();
    double max_err = 0.0;
    for (int k = 1; k <= 10; ++k) {
        const double t = sc.t_end * k / 10.0 - sc.t_end / 400.0;  // midpoints
        const double sim = v.at(t);
        const double exact = 1.0 - std::exp(-t / tau);
        max_err = std::max(max_err, std::abs(sim - exact));
        std::printf("%12.3f %14.8f %14.8f %12.2e\n", t * 1e3, sim, exact,
                    std::abs(sim - exact));
    }
    std::printf("\nmax sampled error: %.2e  (OPM with m=200 ~ trapezoidal)\n",
                max_err);

    // 5. Cross-method agreement through the same facade: OPM's alpha = 1
    //    recurrence IS the trapezoidal rule, so the two paths track each
    //    other to discretization accuracy.
    double cross = 0.0;
    for (int k = 1; k <= 10; ++k) {
        const double t = sc.t_end * k / 10.0 - sc.t_end / 400.0;
        cross = std::max(cross,
                         std::abs(res.outputs[0].at(t) - trap.outputs[0].at(t)));
    }
    std::printf("OPM vs trapezoidal (same Engine handle): %.2e\n", cross);

    // The second run reused the cached pencil analysis: zero orderings.
    std::printf("diagnostics: opm factor %.3g ms, sweep %.3g ms; trapezoidal "
                "run did %d ordering(s)\n",
                res.diag.factor_seconds * 1e3, res.diag.sweep_seconds * 1e3,
                trap.diag.orderings);
    return max_err < 1e-4 && cross < 1e-3 ? 0 : 1;
}
