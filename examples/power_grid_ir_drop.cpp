/// \file power_grid_ir_drop.cpp
/// \brief Example: transient IR-drop analysis of a 3-D power grid — the
///        paper's §V-B scenario at interactive size — run as a batched
///        what-if sweep through the Engine facade.
///
/// Builds a 12x12x3 RLC grid with corner pads and switching loads, then
/// simulates the second-order nodal model with OPM across three load
/// intensities in ONE Engine::run_batch call: the scenarios differ only
/// in their sources, so every run after the first reuses the factored
/// pencil (watch the diagnostics line).  Reported per scenario: the worst
/// supply droop at each monitored node — the quantity a power-integrity
/// engineer actually signs off on.

#include <algorithm>
#include <cstdio>

#include "api/engine.hpp"
#include "circuit/power_grid.hpp"
#include "util/timer.hpp"

using namespace opmsim;

int main() {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 12;
    spec.nz = 3;
    spec.num_loads = 24;
    spec.load_channels = 4;
    spec.load_peak = 8e-3;

    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    std::printf("power grid %ldx%ldx%ld: second-order model n=%ld, "
                "MNA n=%ld, %ld loads\n",
                static_cast<long>(spec.nx), static_cast<long>(spec.ny),
                static_cast<long>(spec.nz),
                static_cast<long>(pg.second_order.num_states()),
                static_cast<long>(pg.mna.num_states()),
                static_cast<long>(spec.num_loads));

    api::Engine engine;
    const api::SystemHandle grid = engine.add_system(pg.second_order);

    // One scenario per load intensity: nominal, +25 %, +50 %.  The VDD
    // ramp (channel 0) is shared; only the load currents scale.
    const double gains[] = {1.0, 1.25, 1.5};
    std::vector<api::Scenario> batch;
    for (const double gain : gains) {
        api::Scenario sc;
        sc.t_end = 3e-9;
        sc.steps = 300;  // h = 10 ps, the paper's base step
        sc.config = opm::MultiTermOptions{};  // the second-order NA model
        for (std::size_t i = 0; i < pg.inputs.size(); ++i) {
            const wave::Source base = pg.inputs[i];
            sc.sources.push_back(i == 0 ? base : wave::Source([base, gain](
                                                     double t) {
                return gain * base(t);
            }));
        }
        batch.push_back(std::move(sc));
    }

    WallTimer timer;
    const std::vector<api::SolveResult> results = engine.run_batch(grid, batch);
    std::printf("OPM batch: %zu scenarios x %ld steps of 10 ps in %.1f ms "
                "(factorizations: first run %d, later runs %d)\n\n",
                results.size(), static_cast<long>(batch[0].steps),
                timer.elapsed_ms(), results[0].diag.factorizations,
                results[1].diag.factorizations + results[2].diag.factorizations);

    static const char* const kWhere[] = {"bottom center", "far corner",
                                         "mid edge"};
    for (std::size_t s = 0; s < results.size(); ++s) {
        std::printf("load intensity x%.2f\n", gains[s]);
        std::printf("  %-14s %12s %14s %12s\n", "monitor", "v_min [V]",
                    "worst droop", "t(v_min) [ns]");
        for (std::size_t c = 0; c < results[s].outputs.size(); ++c) {
            const auto& w = results[s].outputs[c];
            double vmin = 1e9, tmin = 0;
            for (std::size_t k = 0; k < w.size(); ++k) {
                // ignore the initial supply ramp; droop counts after power-up
                if (w.times()[k] < 2.0 * spec.vdd_rise) continue;
                if (w.values()[k] < vmin) {
                    vmin = w.values()[k];
                    tmin = w.times()[k];
                }
            }
            std::printf("  %-14s %12.4f %13.1f%% %12.3f\n", kWhere[c], vmin,
                        (spec.vdd - vmin) / spec.vdd * 100.0, tmin * 1e9);
        }
    }
    std::printf("\n(run bench_table2_power_grid for the full Table II "
                "method comparison)\n");
    return 0;
}
