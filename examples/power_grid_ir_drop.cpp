/// \file power_grid_ir_drop.cpp
/// \brief Example: transient IR-drop analysis of a 3-D power grid — the
///        paper's §V-B scenario at interactive size.
///
/// Builds a 12x12x3 RLC grid with corner pads and switching loads, then
/// simulates the second-order nodal model with OPM and reports the worst
/// supply droop seen at each monitored node — the quantity a power-integrity
/// engineer actually signs off on.

#include <algorithm>
#include <cstdio>

#include "circuit/power_grid.hpp"
#include "opm/multiterm.hpp"
#include "util/timer.hpp"

using namespace opmsim;

int main() {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 12;
    spec.nz = 3;
    spec.num_loads = 24;
    spec.load_channels = 4;
    spec.load_peak = 8e-3;

    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    std::printf("power grid %ldx%ldx%ld: second-order model n=%ld, "
                "MNA n=%ld, %ld loads\n",
                static_cast<long>(spec.nx), static_cast<long>(spec.ny),
                static_cast<long>(spec.nz),
                static_cast<long>(pg.second_order.num_states()),
                static_cast<long>(pg.mna.num_states()),
                static_cast<long>(spec.num_loads));

    const double t_end = 3e-9;
    const la::index_t m = 300;  // h = 10 ps, the paper's base step
    WallTimer timer;
    const opm::OpmResult res =
        opm::simulate_multiterm(pg.second_order, pg.inputs, t_end, m);
    std::printf("OPM simulation: %ld steps of 10 ps in %.1f ms\n\n",
                static_cast<long>(m), timer.elapsed_ms());

    static const char* const kWhere[] = {"bottom center", "far corner",
                                         "mid edge"};
    std::printf("%-14s %12s %14s %12s\n", "monitor", "v_min [V]",
                "worst droop", "t(v_min) [ns]");
    for (std::size_t c = 0; c < res.outputs.size(); ++c) {
        const auto& w = res.outputs[c];
        double vmin = 1e9, tmin = 0;
        for (std::size_t k = 0; k < w.size(); ++k) {
            // ignore the initial supply ramp; droop counts after power-up
            if (w.times()[k] < 2.0 * spec.vdd_rise) continue;
            if (w.values()[k] < vmin) {
                vmin = w.values()[k];
                tmin = w.times()[k];
            }
        }
        std::printf("%-14s %12.4f %13.1f%% %12.3f\n", kWhere[c], vmin,
                    (spec.vdd - vmin) / spec.vdd * 100.0, tmin * 1e9);
    }
    std::printf("\n(run bench_table2_power_grid for the full Table II "
                "method comparison)\n");
    return 0;
}
