/// \file fractional_tline.cpp
/// \brief Example: simulate a fractional (skin-effect) transmission line —
///        the paper's §V-A scenario — and compare OPM against the FFT
///        frequency-domain method.
///
/// Shows the fractional API end to end: build the half-order model, pick
/// the differential order alpha = 1/2, simulate with OPM, cross-check with
/// the FFT solver, and print the far-end waveform.

#include <cstdio>

#include "circuit/tline.hpp"
#include "opm/solver.hpp"
#include "transient/fft_solver.hpp"
#include "wave/sources.hpp"

using namespace opmsim;

int main() {
    // 1. A 3-section line (n = 11 states), mildly lossy.
    circuit::FractionalTlineSpec spec;
    spec.sections = 3;
    spec.k = 2e-4;  // skin-effect coefficient [ohm*sqrt(s)]
    const opm::DenseDescriptorSystem line = circuit::make_fractional_tline(spec);
    std::printf("fractional t-line: %ld states, alpha = %.1f\n",
                static_cast<long>(line.num_states()), circuit::kTlineAlpha);

    // 2. Drive the near end with a 1 V ramped step; terminate the far end.
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3e-9),
                                         wave::step(0.0)};

    // 3. OPM simulation: one call, fractional order in the options.
    const double t_end = 5e-9;
    opm::OpmOptions opt;
    opt.alpha = circuit::kTlineAlpha;
    const opm::OpmResult res = opm::simulate_opm(line, u, t_end, 256, opt);

    // 4. Cross-check with the frequency-domain baseline.
    const auto fft = transient::simulate_fft(line, u, t_end,
                                             {circuit::kTlineAlpha, 512});

    std::printf("\n%10s %16s %16s\n", "t [ns]", "v_far OPM [V]", "v_far FFT [V]");
    for (int k = 1; k <= 16; ++k) {
        const double t = t_end * k / 16.0 - t_end / 512.0;
        std::printf("%10.3f %16.6f %16.6f\n", t * 1e9, res.outputs[1].at(t),
                    fft.outputs[1].at(t));
    }

    const double err_db = wave::relative_error_db(res.outputs[1], fft.outputs[1]);
    std::printf("\nOPM vs FFT mismatch: %.1f dB (dominated by the FFT "
                "method's periodic extension)\n", err_db);
    std::printf("timing: factorization %.3g ms, column sweep %.3g ms\n",
                res.factor_seconds * 1e3, res.sweep_seconds * 1e3);
    return 0;
}
