/// \file fractional_tline.cpp
/// \brief Example: simulate a fractional (skin-effect) transmission line —
///        the paper's §V-A scenario — and compare OPM against the FFT
///        frequency-domain method.
///
/// Shows the fractional API end to end through the Engine facade: build
/// the half-order model, register it, pick the differential order
/// alpha = 1/2 in the scenario config, cross-check OPM with the
/// Grünwald–Letnikov stepper on the SAME handle (the caches make the
/// second method skip the pencil ordering), and with the FFT solver.

#include <cstdio>

#include "api/engine.hpp"
#include "circuit/tline.hpp"
#include "transient/fft_solver.hpp"
#include "wave/sources.hpp"

using namespace opmsim;

int main() {
    // 1. A 3-section line (n = 11 states), mildly lossy.
    circuit::FractionalTlineSpec spec;
    spec.sections = 3;
    spec.k = 2e-4;  // skin-effect coefficient [ohm*sqrt(s)]
    const opm::DenseDescriptorSystem line = circuit::make_fractional_tline(spec);
    std::printf("fractional t-line: %ld states, alpha = %.1f\n",
                static_cast<long>(line.num_states()), circuit::kTlineAlpha);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(line);

    // 2. Drive the near end with a 1 V ramped step; terminate the far end.
    api::Scenario sc;
    sc.sources = {wave::smooth_step(1.0, 0.0, 0.3e-9), wave::step(0.0)};
    sc.t_end = 5e-9;
    sc.steps = 256;

    // 3. OPM simulation: fractional order in the method config.
    opm::OpmOptions opt;
    opt.alpha = circuit::kTlineAlpha;
    sc.config = opt;
    const api::SolveResult res = engine.run(h, sc);

    // 4. Cross-check twice: Grünwald–Letnikov through the same facade
    //    (reusing the cached pencil analysis) and the frequency-domain
    //    baseline.
    transient::GrunwaldOptions gopt;
    gopt.alpha = circuit::kTlineAlpha;
    sc.config = gopt;
    const api::SolveResult gl = engine.run(h, sc);

    const auto fft = transient::simulate_fft(line, sc.sources, sc.t_end,
                                             {circuit::kTlineAlpha, 512});

    std::printf("\n%10s %16s %16s %16s\n", "t [ns]", "v_far OPM [V]",
                "v_far GL [V]", "v_far FFT [V]");
    for (int k = 1; k <= 16; ++k) {
        const double t = sc.t_end * k / 16.0 - sc.t_end / 512.0;
        std::printf("%10.3f %16.6f %16.6f %16.6f\n", t * 1e9,
                    res.outputs[1].at(t), gl.outputs[1].at(t),
                    fft.outputs[1].at(t));
    }

    const double err_db = wave::relative_error_db(res.outputs[1], fft.outputs[1]);
    std::printf("\nOPM vs FFT mismatch: %.1f dB (dominated by the FFT "
                "method's periodic extension)\n", err_db);
    std::printf("timing: factorization %.3g ms, column sweep %.3g ms; GL run "
                "reused the analysis (%d ordering(s))\n",
                res.diag.factor_seconds * 1e3, res.diag.sweep_seconds * 1e3,
                gl.diag.orderings);
    return 0;
}
